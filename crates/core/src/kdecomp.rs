//! The `k-decomp` algorithm (Fig. 10 of the paper), deterministically.
//!
//! The paper presents `k-decomp` as an alternating procedure: *guess* a
//! λ-label `S` of at most `k` edges for the current `[R]`-component `C_R`,
//! *check* (2a) `∀P ∈ atoms(C_R): var(P) ∩ var(R) ⊆ var(S)` and (2b)
//! `var(S) ∩ C_R ≠ ∅`, then recurse on every `[var(S)]`-component inside
//! `C_R`. We determinise it as a memoised top-down search:
//!
//! * Check (2a) is equivalent to `Conn(C_R, R) ⊆ var(S)` where
//!   `Conn = ⋃_{P ∈ atoms(C_R)} (var(P) ∩ var(R))`, and `Conn` is the only
//!   part of `R` the subproblem depends on — so `(C_R, Conn)` is a sound
//!   memoisation key and the search runs in polynomial time for fixed `k`
//!   (the determinisation of Theorem 5.16; Appendix B gives the same idea
//!   as a Datalog program, implemented in [`crate::datalog`]).
//! * [`CandidateMode::Full`] enumerates every `≤ k`-subset of edges exactly
//!   as Step 1 does — complete by Theorem 5.14.
//! * [`CandidateMode::Pruned`] restricts candidates to edges meeting
//!   `C_R ∪ Conn`, the restriction used by the authors' follow-up
//!   implementation (det-k-decomp, \[22\]); it is cross-validated against
//!   `Full` by exhaustive and property tests.
//!
//! On success, a witness tree is extracted with the χ-labels of
//! Lemma 5.13 — `χ(root) = var(λ(root))`, `χ(s) = var(λ(s)) ∩ (χ(r) ∪ C)`
//! — and the result is a normal-form hypertree decomposition of width ≤ k.

use crate::engine::{extract_witness, SolverCore};
use crate::hypertree::HypertreeDecomposition;
use hypergraph::{EdgeSet, Hypergraph, VertexSet};
use rustc_hash::FxHashMap;

/// How λ-label candidates are enumerated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// All `≤ k`-subsets of `edges(H)` — the literal Step 1 of Fig. 10.
    Full,
    /// Only subsets of edges meeting `C_R ∪ Conn(C_R, R)` — the
    /// det-k-decomp restriction; much faster and validated against `Full`.
    #[default]
    Pruned,
}

/// Decide `hw(H) ≤ k` (Theorem 5.14: `k-decomp` accepts iff `hw(H) ≤ k`).
pub fn decide(h: &Hypergraph, k: usize, mode: CandidateMode) -> bool {
    Solver::new(h, k, mode).decide()
}

/// Compute a width-`≤ k` hypertree decomposition in normal form, if one
/// exists (Theorem 5.18 made deterministic).
pub fn decompose(h: &Hypergraph, k: usize, mode: CandidateMode) -> Option<HypertreeDecomposition> {
    Solver::new(h, k, mode).decompose()
}

/// The memo table: `(component, Conn) → chosen λ-label`, `None` =
/// undecomposable. Two levels keyed by borrowed sets, so a memo *hit* —
/// the common case once the search warms up — clones nothing; only a miss
/// pays for the two key clones.
type Memo = FxHashMap<VertexSet, FxHashMap<VertexSet, Option<EdgeSet>>>;

/// Memoised deterministic solver for one `(H, k, mode)` instance.
///
/// The solver is reusable: [`Solver::decide`] fills the memo, repeated
/// calls are O(1) (the root subproblem is cached), and
/// [`Solver::decompose`] extracts the witness from the warm memo without
/// re-running the search — which is how [`crate::opt`] avoids paying for
/// `decide` twice during iterative deepening.
pub struct Solver<'h> {
    core: SolverCore<'h>,
    memo: Memo,
    solved: u64,
}

impl<'h> Solver<'h> {
    /// A fresh solver for `hw(h) ≤ k` under the given candidate mode.
    pub fn new(h: &'h Hypergraph, k: usize, mode: CandidateMode) -> Self {
        Solver {
            core: SolverCore::new(h, k, mode),
            memo: FxHashMap::default(),
            solved: 0,
        }
    }

    /// A solver whose search may spend at most `steps` candidate
    /// examinations (the unit the exponential-in-`k` loop is measured in).
    /// Use [`Self::decide_bounded`] with it; once the budget is exhausted
    /// the memo holds aborted subproblems and the solver answers
    /// `None` forever — make a fresh solver to retry with a larger budget.
    pub fn with_budget(h: &'h Hypergraph, k: usize, mode: CandidateMode, steps: u64) -> Self {
        let mut solver = Self::new(h, k, mode);
        solver.core.set_step_limit(steps);
        solver
    }

    /// Additionally bound the search by a wall-clock deadline: once it
    /// passes, the search aborts exactly like step exhaustion
    /// ([`Self::decide_bounded`] returns `None`, the memo is tainted).
    /// This is how a [`crate::budget::QueryBudget`] deadline reaches the
    /// exact search — the caller hands it a *share* of the remaining time
    /// so a slow exact search degrades to the heuristic tier instead of
    /// eating the whole request budget.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.core.set_deadline(deadline);
    }

    /// Decide `hw(H) ≤ k` within the step budget: `Some(verdict)` when the
    /// search completed, `None` when the budget ran out first (the verdict
    /// is then unknown — crucially *not* "no").
    pub fn decide_bounded(&mut self) -> Option<bool> {
        if self.core.exhausted() {
            return None;
        }
        let verdict = self.decide();
        if self.core.exhausted() {
            None
        } else {
            Some(verdict)
        }
    }

    /// `true` iff a step budget was exhausted at some point (after which
    /// the solver's memo is tainted and every answer is `None`).
    pub fn budget_exhausted(&self) -> bool {
        self.core.exhausted()
    }

    /// Candidate steps spent so far (0 on unbounded solvers — only
    /// budgeted searches pay for the shared counter).
    pub fn steps_used(&self) -> u64 {
        self.core.steps_used()
    }

    /// Decide `hw(H) ≤ k`. Memoised: a second call only re-reads the root
    /// subproblem.
    pub fn decide(&mut self) -> bool {
        let Solver { core, memo, solved } = self;
        match core.root_component() {
            None => true, // no edges: the trivial decomposition works
            Some(c0) => {
                let conn = core.h.empty_vertex_set();
                decomposable(core, memo, solved, &c0, &conn)
            }
        }
    }

    /// Decide, then extract the witness tree from the memo (Lemma 5.13
    /// labelling). The extraction solves no new subproblems.
    pub fn decompose(&mut self) -> Option<HypertreeDecomposition> {
        if !self.decide() {
            return None;
        }
        let h = self.core.h;
        let memo = &self.memo;
        let hd = extract_witness(h, self.core.root_component(), |comp, conn| {
            memo.get(&comp.vertices)
                .and_then(|inner| inner.get(conn))
                .cloned()
                .flatten()
                .expect("every reachable subproblem was solved")
        });
        debug_assert_eq!(hd.validate(h), Ok(()), "witness tree must validate");
        debug_assert!(hd.width() <= self.core.k.max(1));
        Some(hd)
    }

    /// Number of subproblems solved by search (memo misses) so far —
    /// instrumentation for the solve-once contract of the warm-start path.
    pub fn solved_subproblems(&self) -> u64 {
        self.solved
    }
}

/// `k-decomposable(C_R, R)` of Fig. 10, memoised on `(C_R, Conn)`.
fn decomposable(
    core: &SolverCore<'_>,
    memo: &mut Memo,
    solved: &mut u64,
    comp: &hypergraph::Component,
    conn: &VertexSet,
) -> bool {
    if let Some(cached) = memo.get(&comp.vertices).and_then(|inner| inner.get(conn)) {
        return cached.is_some();
    }
    // Mark in-progress as failure; components strictly shrink along the
    // recursion (children live inside comp \ var(S), and check 2b removes
    // at least one vertex), so no cycles can actually revisit the key —
    // this is belt and braces, asserted in the shared core.
    memo.entry(comp.vertices.clone())
        .or_default()
        .insert(conn.clone(), None);
    *solved += 1;

    let chosen = core.search_label(comp, conn, |children| {
        children
            .iter()
            .all(|(child, child_conn)| decomposable(core, memo, solved, child, child_conn))
    });

    let ok = chosen.is_some();
    memo.get_mut(&comp.vertices)
        .expect("in-progress entry present")
        .insert(conn.clone(), chosen);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::acyclic;

    fn q1() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("enrolled", &["S", "C", "R"]);
        b.edge_by_names("teaches", &["P", "C", "A"]);
        b.edge_by_names("parent", &["P", "S"]);
        b.build()
    }

    /// Q5 of Example 3.5 (hw = 2, Fig. 6b).
    fn q5() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("a", &["S", "X", "Xp", "C", "F"]);
        b.edge_by_names("b", &["S", "Y", "Yp", "Cp", "Fp"]);
        b.edge_by_names("c", &["C", "Cp", "Z"]);
        b.edge_by_names("d", &["X", "Z"]);
        b.edge_by_names("e", &["Y", "Z"]);
        b.edge_by_names("f", &["F", "Fp", "Zp"]);
        b.edge_by_names("g", &["Xp", "Zp"]);
        b.edge_by_names("h", &["Yp", "Zp"]);
        b.edge_by_names("j", &["J", "X", "Y", "Xp", "Yp"]);
        b.build()
    }

    #[test]
    fn q1_has_hypertree_width_2() {
        let h = q1();
        for mode in [CandidateMode::Full, CandidateMode::Pruned] {
            assert!(!decide(&h, 1, mode), "Q1 is cyclic, so hw > 1");
            assert!(decide(&h, 2, mode));
            let hd = decompose(&h, 2, mode).unwrap();
            assert_eq!(hd.validate(&h), Ok(()));
            assert_eq!(hd.width(), 2);
        }
    }

    #[test]
    fn q5_has_hypertree_width_2() {
        let h = q5();
        for mode in [CandidateMode::Full, CandidateMode::Pruned] {
            assert!(!decide(&h, 1, mode));
            let hd = decompose(&h, 2, mode).expect("hw(Q5) = 2 per Example 4.3");
            assert_eq!(hd.validate(&h), Ok(()));
            assert_eq!(hd.width(), 2);
        }
    }

    #[test]
    fn acyclic_iff_width_1() {
        // Theorem 4.5 on a few shapes.
        let path = Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(decide(&path, 1, CandidateMode::Pruned));
        let hd = decompose(&path, 1, CandidateMode::Pruned).unwrap();
        assert_eq!(hd.width(), 1);

        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(!decide(&triangle, 1, CandidateMode::Pruned));
        assert!(decide(&triangle, 2, CandidateMode::Pruned));
        assert!(!acyclic::is_acyclic(&triangle));
    }

    #[test]
    fn trivial_cases() {
        let empty = Hypergraph::from_edge_lists(0, &[]);
        assert!(decide(&empty, 1, CandidateMode::Pruned));
        let hd = decompose(&empty, 1, CandidateMode::Pruned).unwrap();
        assert_eq!(hd.width(), 0);
        assert_eq!(hd.validate(&empty), Ok(()));

        let single = Hypergraph::from_edge_lists(3, &[&[0, 1, 2]]);
        let hd = decompose(&single, 1, CandidateMode::Pruned).unwrap();
        assert_eq!(hd.width(), 1);
        assert_eq!(hd.len(), 1);
    }

    #[test]
    fn nullary_edges_are_ignored() {
        let h = Hypergraph::from_edge_lists(2, &[&[], &[0, 1], &[]]);
        let hd = decompose(&h, 1, CandidateMode::Pruned).unwrap();
        assert_eq!(hd.validate(&h), Ok(()));
        assert_eq!(hd.width(), 1);
    }

    #[test]
    fn disconnected_hypergraphs_decompose() {
        let h = Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[3, 4], &[4, 5]]);
        let hd = decompose(&h, 1, CandidateMode::Pruned).expect("disconnected acyclic: hw = 1");
        assert_eq!(hd.validate(&h), Ok(()));
        // Two triangles, disjoint: hw = 2.
        let two =
            Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[0, 2], &[3, 4], &[4, 5], &[3, 5]]);
        assert!(!decide(&two, 1, CandidateMode::Pruned));
        let hd = decompose(&two, 2, CandidateMode::Pruned).unwrap();
        assert_eq!(hd.validate(&two), Ok(()));
    }

    #[test]
    fn cycles_have_width_2() {
        for n in 3..10 {
            let edges: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let h = Hypergraph::from_edge_lists(n, &slices);
            assert!(!decide(&h, 1, CandidateMode::Pruned), "C{n} is cyclic");
            let hd = decompose(&h, 2, CandidateMode::Pruned).expect("cycles have hw 2");
            assert_eq!(hd.validate(&h), Ok(()));
            assert_eq!(hd.width(), 2);
        }
    }

    #[test]
    fn modes_agree_on_small_hypergraphs() {
        // Exhaustive-ish sweep over tiny hypergraphs.
        let shapes: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0], vec![0, 2]],
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
            vec![vec![0, 1], vec![0, 1]],
            vec![vec![0], vec![1], vec![0, 1]],
        ];
        for edges in shapes {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap_or(0);
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            for k in 1..=3 {
                assert_eq!(
                    decide(&h, k, CandidateMode::Full),
                    decide(&h, k, CandidateMode::Pruned),
                    "modes disagree on {edges:?} at k={k}"
                );
            }
        }
    }

    #[test]
    fn extraction_solves_no_new_subproblems() {
        // The solve-once contract behind the warm-start path: decide()
        // fills the memo; decompose() only reads it back.
        let h = q5();
        let mut solver = Solver::new(&h, 2, CandidateMode::Pruned);
        assert!(solver.decide());
        let solved = solver.solved_subproblems();
        assert!(solved > 0);
        assert!(solver.decide(), "repeat decide is a memo hit");
        assert_eq!(solver.solved_subproblems(), solved);
        let hd = solver.decompose().expect("hw(Q5) = 2");
        assert_eq!(hd.validate(&h), Ok(()));
        assert_eq!(
            solver.solved_subproblems(),
            solved,
            "extraction must not re-run the search"
        );
    }

    #[test]
    fn witness_is_normal_form_sized() {
        // Lemma 5.7: NF decompositions have at most |var(Q)| nodes.
        let h = q5();
        let hd = decompose(&h, 2, CandidateMode::Pruned).unwrap();
        assert!(hd.len() <= h.num_vertices());
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn k_zero_panics() {
        decide(&q1(), 0, CandidateMode::Pruned);
    }

    #[test]
    fn budget_bounds_the_search() {
        let h = q5();
        // A tiny budget exhausts: the verdict is unknown, not "no".
        let mut s = Solver::with_budget(&h, 2, CandidateMode::Pruned, 3);
        assert_eq!(s.decide_bounded(), None);
        assert!(s.budget_exhausted());
        assert_eq!(s.decide_bounded(), None, "exhausted solvers stay exhausted");
        assert!(s.decompose().is_none());
        // A generous budget decides and matches the unbounded verdict.
        let mut s = Solver::with_budget(&h, 2, CandidateMode::Pruned, 1_000_000);
        assert_eq!(s.decide_bounded(), Some(true));
        assert!(!s.budget_exhausted());
        assert!(s.steps_used() > 0);
        let hd = s.decompose().expect("within budget, extraction works");
        assert_eq!(hd.validate(&h), Ok(()));
        let mut s = Solver::with_budget(&h, 1, CandidateMode::Pruned, 1_000_000);
        assert_eq!(s.decide_bounded(), Some(false));
    }

    #[test]
    fn an_elapsed_deadline_exhausts_like_a_spent_budget() {
        let h = q5();
        let mut s = Solver::with_budget(&h, 2, CandidateMode::Pruned, u64::MAX);
        s.set_deadline(Some(std::time::Instant::now()));
        assert_eq!(s.decide_bounded(), None, "verdict is unknown, not 'no'");
        assert!(s.budget_exhausted());
        assert!(s.decompose().is_none());
        // A far-away deadline leaves the verdict untouched.
        let mut s = Solver::with_budget(&h, 2, CandidateMode::Pruned, u64::MAX);
        s.set_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(3600),
        ));
        assert_eq!(s.decide_bounded(), Some(true));
        assert!(!s.budget_exhausted());
    }
}
