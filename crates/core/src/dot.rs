//! Graphviz (DOT) export for decompositions — render the paper's figures:
//! `dot -Tpng` on the output of these functions draws trees in the style
//! of Fig. 2/5/6 of the paper.

use crate::hypertree::HypertreeDecomposition;
use crate::querydecomp::QueryDecomposition;
use hypergraph::{Hypergraph, Ix};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// DOT source for a hypertree decomposition; each node shows
/// `λ` (atom names) over `χ` (variable names).
pub fn hypertree_to_dot(h: &Hypergraph, hd: &HypertreeDecomposition) -> String {
    let mut out =
        String::from("digraph hypertree {\n  node [shape=box, fontname=\"monospace\"];\n");
    for n in hd.tree().nodes() {
        let lambda = h.display_edge_set(hd.lambda(n));
        let chi = h.display_vertex_set(hd.chi(n));
        writeln!(
            out,
            "  n{} [label=\"λ = {}\\nχ = {}\"];",
            n.index(),
            escape(&lambda),
            escape(&chi)
        )
        .unwrap();
    }
    for n in hd.tree().nodes() {
        if let Some(p) = hd.tree().parent(n) {
            writeln!(out, "  n{} -> n{};", p.index(), n.index()).unwrap();
        }
    }
    out.push_str("}\n");
    out
}

/// DOT source for a (pure) query decomposition; each node shows its atoms.
pub fn query_decomposition_to_dot(h: &Hypergraph, qd: &QueryDecomposition) -> String {
    let mut out =
        String::from("digraph querydecomp {\n  node [shape=box, fontname=\"monospace\"];\n");
    for n in qd.tree().nodes() {
        let atoms: Vec<String> = qd.label(n).iter().map(|e| h.display_edge(e)).collect();
        writeln!(
            out,
            "  n{} [label=\"{}\"];",
            n.index(),
            escape(&atoms.join("\\n"))
        )
        .unwrap();
    }
    for n in qd.tree().nodes() {
        if let Some(p) = qd.tree().parent(n) {
            writeln!(out, "  n{} -> n{};", p.index(), n.index()).unwrap();
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdecomp::{decompose, CandidateMode};

    fn q1() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("enrolled", &["S", "C", "R"]);
        b.edge_by_names("teaches", &["P", "C", "A"]);
        b.edge_by_names("parent", &["P", "S"]);
        b.build()
    }

    #[test]
    fn hypertree_dot_is_well_formed() {
        let h = q1();
        let hd = decompose(&h, 2, CandidateMode::Pruned).unwrap();
        let dot = hypertree_to_dot(&h, &hd);
        assert!(dot.starts_with("digraph hypertree {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("λ =").count(), hd.len());
        // One arrow per non-root node.
        assert_eq!(dot.matches("->").count(), hd.len() - 1);
    }

    #[test]
    fn qd_dot_is_well_formed() {
        use hypergraph::{EdgeSet, RootedTree};
        let h = q1();
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        let mk = |names: &[&str]| {
            EdgeSet::from_iter(
                h.num_edges(),
                names.iter().map(|n| h.edge_by_name(n).unwrap()),
            )
        };
        let qd = crate::querydecomp::QueryDecomposition::new(
            tree,
            vec![mk(&["enrolled", "teaches"]), mk(&["enrolled", "parent"])],
        );
        let dot = query_decomposition_to_dot(&h, &qd);
        assert!(dot.contains("enrolled(S,C,R)"));
        assert_eq!(dot.matches("->").count(), 1);
    }

    #[test]
    fn quotes_are_escaped() {
        let mut b = Hypergraph::builder();
        b.edge_by_names("odd\"name", &["X"]);
        let h = b.build();
        let hd = decompose(&h, 1, CandidateMode::Pruned).unwrap();
        let dot = hypertree_to_dot(&h, &hd);
        assert!(dot.contains("odd\\\"name"));
    }
}
