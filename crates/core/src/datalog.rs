//! The Appendix B Datalog program: a deterministic bottom-up evaluation of
//! `k-decomp`.
//!
//! Appendix B reduces `hw(Q) ≤ k` to a weakly stratified Datalog program
//! over materialised base relations:
//!
//! * `k-vertex(R)` — every non-empty set `R` of at most `k` edges;
//! * `component(C_R, R)` — every `[var(R)]`-component, plus the pseudo
//!   component `⟨varQ, root⟩`;
//! * `meets-conditions(S, R, C_R)` — Step 2 of Fig. 10:
//!   `var(S) ∩ C_R ≠ ∅` and `∀P ∈ atoms(C_R): var(P) ∩ var(R) ⊆ var(S)`
//!   (plus `⟨S, root, varQ⟩` for every k-vertex `S`);
//! * `subset(C_S, C_R)` — proper containment between components.
//!
//! with rules
//!
//! ```text
//! k-decomposable(R, C_R) :- k-vertex(S), meets-conditions(S, R, C_R),
//!                           ¬ undecomposable(S, C_R).
//! undecomposable(S, C_R) :- component(C_S, S), subset(C_S, C_R),
//!                           ¬ k-decomposable(S, C_S).
//! ```
//!
//! Because rule bodies only reference strictly smaller components, the
//! program is weakly stratified and its well-founded model is total; we
//! evaluate it by induction on component size. `hw(Q) ≤ k` iff
//! `k-decomposable(root, varQ)` holds.
//!
//! This module exists as an *independent second implementation* of the
//! decision procedure: the top-down solver in [`crate::kdecomp`] and this
//! bottom-up program are cross-validated in the test suites. It
//! materialises all `O(m^k)` k-vertices and is meant for moderate sizes.

use hypergraph::{components, EdgeId, Hypergraph, VertexSet};
use rustc_hash::FxHashMap;

/// Decide `hw(H) ≤ k` by evaluating the Appendix B Datalog program.
pub fn decide_bottom_up(h: &Hypergraph, k: usize) -> bool {
    assert!(k >= 1, "hypertree width is only defined for k ≥ 1");
    let edges: Vec<EdgeId> = h
        .edges()
        .filter(|&e| !h.edge_vertices(e).is_empty())
        .collect();
    if edges.is_empty() {
        return true;
    }

    // Materialise the k-vertices and their variable sets.
    let mut kvertex_vars: Vec<VertexSet> = Vec::new();
    let mut subsets: Vec<Vec<EdgeId>> = Vec::new();
    enumerate_subsets(&edges, k, &mut subsets);
    for s in &subsets {
        let mut vars = h.empty_vertex_set();
        for &e in s {
            vars.union_with(h.edge_vertices(e));
        }
        kvertex_vars.push(vars);
    }
    let num_kv = kvertex_vars.len();

    // Components: global arena deduplicated by vertex set. Component 0 is
    // the pseudo-component varQ (all vertices of real edges).
    let mut comp_ids: FxHashMap<VertexSet, usize> = FxHashMap::default();
    let mut comp_vertices: Vec<VertexSet> = Vec::new();
    let mut var_q = h.empty_vertex_set();
    for &e in &edges {
        var_q.union_with(h.edge_vertices(e));
    }
    comp_ids.insert(var_q.clone(), 0);
    comp_vertices.push(var_q.clone());

    // component(C, R): per k-vertex, the ids of its components.
    let mut kv_components: Vec<Vec<usize>> = Vec::with_capacity(num_kv);
    // For meets-conditions we also need atoms(C) per component.
    let mut comp_edges: Vec<hypergraph::EdgeSet> = vec![h.all_edges()];
    for vars in &kvertex_vars {
        let mut ids = Vec::new();
        // archlint::allow(scoped-component-sweeps, reason = "top-level entry-point sweep, once per datalog translation, not per recursion step")
        for c in components(h, vars) {
            let id = *comp_ids.entry(c.vertices.clone()).or_insert_with(|| {
                comp_vertices.push(c.vertices.clone());
                comp_edges.push(c.edges.clone());
                comp_vertices.len() - 1
            });
            ids.push(id);
        }
        kv_components.push(ids);
    }

    // meets-conditions(S, R, C_R): S satisfies Step 2 for the pair
    // (R, C_R). Precompute Conn(C_R, R) = ⋃_{P ∈ atoms(C_R)} var(P) ∩
    // var(R) per (R, C_R) pair; then the check is Conn ⊆ var(S) ∧
    // var(S) ∩ C_R ≠ ∅. For the root pair, every S qualifies.
    let conn_of = |comp_id: usize, r_vars: &VertexSet| -> VertexSet {
        let mut conn = h.empty_vertex_set();
        for e in &comp_edges[comp_id] {
            let mut shared = h.edge_vertices(e).clone();
            shared.intersect_with(r_vars);
            conn.union_with(&shared);
        }
        conn
    };

    // Evaluate by induction on |C| ascending (weak stratification).
    // decomposable[(kv, comp)] for the real pairs; root handled at the end.
    let mut order: Vec<usize> = (1..comp_vertices.len()).collect();
    order.sort_by_key(|&c| comp_vertices[c].len());

    // For a pair (S, C): undecomposable(S, C) = ∃ C_S ∈ components(S):
    // C_S ⊊ C ∧ ¬decomposable(S, C_S).
    let mut decomposable: FxHashMap<(usize, usize), bool> = FxHashMap::default();
    let undecomposable = |s: usize,
                          c: usize,
                          kv_components: &Vec<Vec<usize>>,
                          comp_vertices: &Vec<VertexSet>,
                          decomposable: &FxHashMap<(usize, usize), bool>|
     -> bool {
        kv_components[s].iter().any(|&cs| {
            comp_vertices[cs].is_proper_subset_of(&comp_vertices[c])
                && !decomposable.get(&(s, cs)).copied().unwrap_or(false)
        })
    };

    for &c in &order {
        // k-decomposable(R, C) has the same truth value for every R with
        // the same Conn — but the Datalog program keys on (R, C); we follow
        // it literally and compute per (R, C) pair where C is an
        // [R]-component.
        for r in 0..num_kv {
            if !kv_components[r].contains(&c) {
                continue;
            }
            let conn = conn_of(c, &kvertex_vars[r]);
            let mut ok = false;
            #[allow(clippy::needless_range_loop)] // s is a k-vertex id
            for s in 0..num_kv {
                if !conn.is_subset_of(&kvertex_vars[s]) {
                    continue;
                }
                if !kvertex_vars[s].intersects(&comp_vertices[c]) {
                    continue;
                }
                if !undecomposable(s, c, &kv_components, &comp_vertices, &decomposable) {
                    ok = true;
                    break;
                }
            }
            decomposable.insert((r, c), ok);
        }
    }

    // Acceptance: ∃S: meets-conditions(S, root, varQ) ∧ ¬undecomposable(S, varQ).
    (0..num_kv).any(|s| !undecomposable(s, 0, &kv_components, &comp_vertices, &decomposable))
}

fn enumerate_subsets(edges: &[EdgeId], k: usize, out: &mut Vec<Vec<EdgeId>>) {
    let mut current = Vec::new();
    fn rec(
        edges: &[EdgeId],
        start: usize,
        k: usize,
        current: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        if !current.is_empty() {
            out.push(current.clone());
        }
        if current.len() == k {
            return;
        }
        for i in start..edges.len() {
            current.push(edges[i]);
            rec(edges, i + 1, k, current, out);
            current.pop();
        }
    }
    rec(edges, 0, k, &mut current, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdecomp::{decide, CandidateMode};
    use hypergraph::Ix;

    fn check_agreement(h: &Hypergraph, max_k: usize) {
        for k in 1..=max_k {
            assert_eq!(
                decide_bottom_up(h, k),
                decide(h, k, CandidateMode::Full),
                "bottom-up and top-down disagree at k={k} on {h:?}"
            );
        }
    }

    #[test]
    fn agrees_on_q1() {
        let mut b = Hypergraph::builder();
        b.edge_by_names("enrolled", &["S", "C", "R"]);
        b.edge_by_names("teaches", &["P", "C", "A"]);
        b.edge_by_names("parent", &["P", "S"]);
        let h = b.build();
        assert!(!decide_bottom_up(&h, 1));
        assert!(decide_bottom_up(&h, 2));
        check_agreement(&h, 3);
    }

    #[test]
    fn agrees_on_cycles() {
        for n in 3..8 {
            let edges: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let h = Hypergraph::from_edge_lists(n, &slices);
            check_agreement(&h, 2);
        }
    }

    #[test]
    fn agrees_on_small_zoo() {
        let zoo: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 0]],
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0], vec![0, 1], vec![1]],
            vec![vec![0, 1, 2, 3]],
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 0],
                vec![0, 2],
                vec![1, 3],
            ],
        ];
        for edges in zoo {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap_or(0);
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            check_agreement(&h, 3);
        }
    }

    #[test]
    fn trivial_inputs() {
        let empty = Hypergraph::from_edge_lists(0, &[]);
        assert!(decide_bottom_up(&empty, 1));
        let nullary = Hypergraph::from_edge_lists(1, &[&[]]);
        assert!(decide_bottom_up(&nullary, 1));
    }

    #[test]
    fn subset_enumeration_counts() {
        let edges: Vec<EdgeId> = (0..5).map(EdgeId::new).collect();
        let mut out = Vec::new();
        enumerate_subsets(&edges, 2, &mut out);
        assert_eq!(out.len(), 5 + 10);
        let mut out3 = Vec::new();
        enumerate_subsets(&edges, 3, &mut out3);
        assert_eq!(out3.len(), 5 + 10 + 10);
    }
}
