//! A parallel `k-decomp` — the executable stand-in for the paper's
//! parallelizability results (Theorem 5.16: recognising `hw ≤ k` is in
//! LOGCFL ⊆ AC¹, i.e. highly parallelizable).
//!
//! We obviously do not run an alternating Turing machine; instead we
//! exploit the same structural fact the ATM does: once a λ-label `S` is
//! fixed, the `[var(S)]`-components inside the current component are
//! *independent* subproblems (the universal branching of Step 4). The
//! solver evaluates them on scoped worker threads, sharing the
//! `(component, Conn)` memo table behind a `parking_lot::RwLock`. Two
//! workers may race to solve the same key — both compute the same answer,
//! one insert wins; correctness is unaffected, only a little work is
//! duplicated (this is the standard lock-light memoisation trade).
//!
//! Spawning is throttled by `depth < PARALLEL_DEPTH` and a minimum
//! component size so that small instances do not drown in thread overhead;
//! the ablation experiment E11 measures the crossover.

use crate::kdecomp::CandidateMode;
use crate::subsets::subsets;
use hypergraph::{components_within, connecting_set, Component, EdgeId, Hypergraph, VertexSet};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;

/// Spawn threads only this deep in the recursion.
const PARALLEL_DEPTH: usize = 3;
/// Components smaller than this are solved inline.
const MIN_PARALLEL_COMPONENT: usize = 4;

type Memo = RwLock<FxHashMap<(VertexSet, VertexSet), bool>>;

/// Decide `hw(H) ≤ k` using scoped worker threads over independent
/// components. Produces the same answer as [`crate::kdecomp::decide`].
pub fn decide_parallel(h: &Hypergraph, k: usize, mode: CandidateMode) -> bool {
    assert!(k >= 1, "hypertree width is only defined for k ≥ 1");
    let pool_all: Vec<EdgeId> = h
        .edges()
        .filter(|&e| !h.edge_vertices(e).is_empty())
        .collect();
    if pool_all.is_empty() {
        return true;
    }
    let mut vertices = h.empty_vertex_set();
    let mut edges = h.empty_edge_set();
    for &e in &pool_all {
        vertices.union_with(h.edge_vertices(e));
        edges.insert(e);
    }
    let ctx = Ctx {
        h,
        k,
        mode,
        pool_all,
        memo: RwLock::new(FxHashMap::default()),
    };
    let root = Component { vertices, edges };
    let conn = h.empty_vertex_set();
    decomposable(&ctx, &root, &conn, 0)
}

struct Ctx<'h> {
    h: &'h Hypergraph,
    k: usize,
    mode: CandidateMode,
    pool_all: Vec<EdgeId>,
    memo: Memo,
}

fn decomposable(ctx: &Ctx<'_>, comp: &Component, conn: &VertexSet, depth: usize) -> bool {
    let key = (comp.vertices.clone(), conn.clone());
    if let Some(&cached) = ctx.memo.read().get(&key) {
        return cached;
    }
    let h = ctx.h;

    let pool: Vec<EdgeId> = match ctx.mode {
        CandidateMode::Full => ctx.pool_all.clone(),
        CandidateMode::Pruned => {
            let mut relevant = comp.vertices.clone();
            relevant.union_with(conn);
            ctx.pool_all
                .iter()
                .copied()
                .filter(|&e| h.edge_vertices(e).intersects(&relevant))
                .collect()
        }
    };

    let mut ok = false;
    'candidates: for s in subsets(pool.len(), ctx.k) {
        let mut label_vars = h.empty_vertex_set();
        for &i in &s {
            label_vars.union_with(h.edge_vertices(pool[i]));
        }
        if !conn.is_subset_of(&label_vars) || !label_vars.intersects(&comp.vertices) {
            continue;
        }
        let children = components_within(h, &label_vars, &comp.vertices);
        let (big, small): (Vec<_>, Vec<_>) = children
            .into_iter()
            .partition(|c| c.vertices.len() >= MIN_PARALLEL_COMPONENT);

        // Small components inline; big ones on scoped threads when shallow.
        for child in &small {
            let child_conn = connecting_set(h, child, &label_vars);
            if !decomposable(ctx, child, &child_conn, depth + 1) {
                continue 'candidates;
            }
        }
        let all_big_ok = if depth < PARALLEL_DEPTH && big.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = big
                    .iter()
                    .map(|child| {
                        let child_conn = connecting_set(h, child, &label_vars);
                        scope.spawn(move || decomposable(ctx, child, &child_conn, depth + 1))
                    })
                    .collect();
                handles
                    .into_iter()
                    .all(|j| j.join().expect("worker panicked"))
            })
        } else {
            big.iter().all(|child| {
                let child_conn = connecting_set(h, child, &label_vars);
                decomposable(ctx, child, &child_conn, depth + 1)
            })
        };
        if all_big_ok {
            ok = true;
            break;
        }
    }

    ctx.memo.write().insert(key, ok);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdecomp::decide;

    fn cycle(n: usize) -> Hypergraph {
        let edges: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
        Hypergraph::from_edge_lists(n, &slices)
    }

    #[test]
    fn agrees_with_sequential_on_cycles() {
        for n in [3, 6, 10] {
            let h = cycle(n);
            for k in 1..=2 {
                assert_eq!(
                    decide_parallel(&h, k, CandidateMode::Pruned),
                    decide(&h, k, CandidateMode::Pruned),
                    "cycle {n}, k {k}"
                );
            }
        }
    }

    #[test]
    fn agrees_on_branching_instances() {
        // A star of triangles: many independent components after fixing
        // the hub — exactly the shape that exercises parallel branches.
        let mut edges: Vec<Vec<usize>> = Vec::new();
        let mut v = 1;
        for _ in 0..4 {
            edges.push(vec![0, v]);
            edges.push(vec![v, v + 1]);
            edges.push(vec![v + 1, v + 2]);
            edges.push(vec![v + 2, v]);
            v += 3;
        }
        let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
        let h = Hypergraph::from_edge_lists(v, &slices);
        for k in 1..=3 {
            assert_eq!(
                decide_parallel(&h, k, CandidateMode::Pruned),
                decide(&h, k, CandidateMode::Pruned),
                "k {k}"
            );
        }
    }

    #[test]
    fn trivial_inputs() {
        let empty = Hypergraph::from_edge_lists(0, &[]);
        assert!(decide_parallel(&empty, 1, CandidateMode::Pruned));
        let single = Hypergraph::from_edge_lists(2, &[&[0, 1]]);
        assert!(decide_parallel(&single, 1, CandidateMode::Full));
    }
}
