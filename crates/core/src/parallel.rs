//! A parallel `k-decomp` — the executable stand-in for the paper's
//! parallelizability results (Theorem 5.16: recognising `hw ≤ k` is in
//! LOGCFL ⊆ AC¹, i.e. highly parallelizable).
//!
//! We obviously do not run an alternating Turing machine; instead we
//! exploit the same structural fact the ATM does: once a λ-label `S` is
//! fixed, the `[var(S)]`-components inside the current component are
//! *independent* subproblems (the universal branching of Step 4). The
//! per-subproblem search — candidate pool, subset enumeration, checks
//! 2a/2b, scoped child computation — is the shared
//! `crate::engine::SolverCore`, the same code the sequential solver
//! runs; this module only decides *where* the child subproblems execute:
//! big components on scoped worker threads (while the recursion is
//! shallow), small ones inline.
//!
//! The memo table lives behind a `parking_lot::RwLock` and stores, per
//! `(component, Conn)` key, either the finished verdict with its λ-label
//! (so [`decompose_parallel`] can extract a witness, exactly like the
//! sequential solver) or an *in-progress* marker tagged with the working
//! thread:
//!
//! * another thread finding the marker simply recomputes — both arrive at
//!   the same deterministic answer, one insert wins, and only a little
//!   work is duplicated (the standard lock-light memoisation trade);
//! * the *same* thread finding its own marker would mean a memo cycle.
//!   Components strictly shrink along the recursion (asserted in the
//!   shared core), so this cannot happen; like the sequential solver's
//!   pending-entry guard it is belt and braces, here made thread-correct
//!   by the tag — a plain "pending = failure" entry (as this module used
//!   before it shared the core) would be read by *other* threads as a
//!   cached negative and silently corrupt the memo.
//!
//! Spawning is throttled by `depth < PARALLEL_DEPTH` and a minimum
//! component size so that small instances do not drown in thread overhead;
//! the ablation experiment E11 measures the crossover.

use crate::engine::{extract_witness, SolverCore};
use crate::hypertree::HypertreeDecomposition;
use crate::kdecomp::CandidateMode;
use hypergraph::{Component, EdgeSet, Hypergraph, VertexSet};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::ThreadId;

/// Run `f` over every item on `workers` scoped threads (inline when
/// `workers <= 1`), preserving item order in the results. Work items are
/// handed out by a shared atomic cursor so a slow item never strands the
/// rest of a worker's share — the same idiom as the component-level
/// spawning below, applied to a flat work list. Each worker accumulates
/// `(index, result)` pairs privately and the lists are merged after the
/// scope joins, so result delivery needs no shared lock.
///
/// This is the workspace's one generic fork/join helper: the serving
/// layer spreads batch requests over it, and the sharded evaluation
/// pipeline runs per-shard sweep work through it.
pub fn run_parallel<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

/// Spawn threads only this deep in the recursion.
const PARALLEL_DEPTH: usize = 3;
/// Components smaller than this are solved inline.
const MIN_PARALLEL_COMPONENT: usize = 4;

/// One memo slot: either a finished subproblem (with its λ-label, `None` =
/// undecomposable) or a cycle marker for the tagged thread.
enum Slot {
    InProgress(ThreadId),
    Done(Option<EdgeSet>),
}

type Memo = RwLock<FxHashMap<VertexSet, FxHashMap<VertexSet, Slot>>>;

struct Ctx<'h> {
    core: SolverCore<'h>,
    memo: Memo,
}

/// Decide `hw(H) ≤ k` using scoped worker threads over independent
/// components. Produces the same answer as [`crate::kdecomp::decide`].
pub fn decide_parallel(h: &Hypergraph, k: usize, mode: CandidateMode) -> bool {
    match setup(h, k, mode) {
        None => true,
        Some((root, ctx)) => decomposable_at(&ctx, &root, &h.empty_vertex_set(), 0),
    }
}

/// Compute a width-`≤ k` hypertree decomposition in normal form using the
/// parallel solver, if one exists. The witness is extracted from the
/// memoised λ-labels, exactly as [`crate::kdecomp::decompose`] does.
pub fn decompose_parallel(
    h: &Hypergraph,
    k: usize,
    mode: CandidateMode,
) -> Option<HypertreeDecomposition> {
    let Some((root, ctx)) = setup(h, k, mode) else {
        // No edges: the trivial decomposition.
        return Some(extract_witness(h, None, |_, _| h.empty_edge_set()));
    };
    if !decomposable_at(&ctx, &root, &h.empty_vertex_set(), 0) {
        return None;
    }
    // All worker threads have joined (scoped), so every touched key holds a
    // Done slot; the walk below only visits subproblems that succeeded.
    let memo = ctx.memo.into_inner();
    let hd = extract_witness(h, Some(root), |comp, child_conn| {
        match memo.get(&comp.vertices).and_then(|m| m.get(child_conn)) {
            Some(Slot::Done(Some(label))) => label.clone(),
            _ => unreachable!("every reachable subproblem was solved"),
        }
    });
    debug_assert_eq!(hd.validate(h), Ok(()), "witness tree must validate");
    debug_assert!(hd.width() <= k.max(1));
    Some(hd)
}

/// Shared setup: `None` when the hypergraph has no covering work at all.
fn setup(h: &Hypergraph, k: usize, mode: CandidateMode) -> Option<(Component, Ctx<'_>)> {
    let core = SolverCore::new(h, k, mode);
    let root = core.root_component()?;
    let ctx = Ctx {
        core,
        memo: RwLock::new(FxHashMap::default()),
    };
    Some((root, ctx))
}

fn decomposable_at(ctx: &Ctx<'_>, comp: &Component, conn: &VertexSet, depth: usize) -> bool {
    let me = std::thread::current().id();
    // Fast path: once the memo warms up most calls are Done hits, served
    // under the shared read lock so workers do not serialize.
    if let Some(Slot::Done(label)) = ctx
        .memo
        .read()
        .get(&comp.vertices)
        .and_then(|m| m.get(conn))
    {
        return label.is_some();
    }
    {
        // Re-check under the write lock before planting the marker: a
        // racing thread may have finished (or started) in between.
        let mut memo = ctx.memo.write();
        match memo.get(&comp.vertices).and_then(|m| m.get(conn)) {
            Some(Slot::Done(label)) => return label.is_some(),
            // Our own marker would be a memo cycle (impossible: components
            // strictly shrink) — belt and braces, mirroring kdecomp.
            Some(Slot::InProgress(t)) if *t == me => return false,
            // Another thread is on it: recompute rather than wait.
            _ => {
                memo.entry(comp.vertices.clone())
                    .or_default()
                    .insert(conn.clone(), Slot::InProgress(me));
            }
        }
    }

    let chosen = ctx.core.search_label(comp, conn, |children| {
        // Small components inline; big ones on scoped threads when shallow.
        let (big, small): (Vec<_>, Vec<_>) = children
            .iter()
            .partition(|(c, _)| c.vertices.len() >= MIN_PARALLEL_COMPONENT);
        for (child, child_conn) in &small {
            if !decomposable_at(ctx, child, child_conn, depth + 1) {
                return false;
            }
        }
        if depth < PARALLEL_DEPTH && big.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = big
                    .iter()
                    .map(|(child, child_conn)| {
                        scope.spawn(move || decomposable_at(ctx, child, child_conn, depth + 1))
                    })
                    .collect();
                handles
                    .into_iter()
                    .all(|j| j.join().expect("worker panicked"))
            })
        } else {
            big.iter()
                .all(|(child, child_conn)| decomposable_at(ctx, child, child_conn, depth + 1))
        }
    });

    let ok = chosen.is_some();
    ctx.memo
        .write()
        .entry(comp.vertices.clone())
        .or_default()
        .insert(conn.clone(), Slot::Done(chosen));
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdecomp::{decide, decompose};

    fn cycle(n: usize) -> Hypergraph {
        let edges: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
        Hypergraph::from_edge_lists(n, &slices)
    }

    #[test]
    fn agrees_with_sequential_on_cycles() {
        for n in [3, 6, 10] {
            let h = cycle(n);
            for k in 1..=2 {
                assert_eq!(
                    decide_parallel(&h, k, CandidateMode::Pruned),
                    decide(&h, k, CandidateMode::Pruned),
                    "cycle {n}, k {k}"
                );
            }
        }
    }

    #[test]
    fn agrees_on_branching_instances() {
        // A star of triangles: many independent components after fixing
        // the hub — exactly the shape that exercises parallel branches.
        let mut edges: Vec<Vec<usize>> = Vec::new();
        let mut v = 1;
        for _ in 0..4 {
            edges.push(vec![0, v]);
            edges.push(vec![v, v + 1]);
            edges.push(vec![v + 1, v + 2]);
            edges.push(vec![v + 2, v]);
            v += 3;
        }
        let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
        let h = Hypergraph::from_edge_lists(v, &slices);
        for k in 1..=3 {
            assert_eq!(
                decide_parallel(&h, k, CandidateMode::Pruned),
                decide(&h, k, CandidateMode::Pruned),
                "k {k}"
            );
        }
    }

    #[test]
    fn parallel_witnesses_validate() {
        let shapes: Vec<Hypergraph> = vec![
            cycle(6),
            cycle(10),
            Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]),
            Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]),
        ];
        for h in &shapes {
            for k in 1..=2 {
                for mode in [CandidateMode::Full, CandidateMode::Pruned] {
                    let par = decompose_parallel(h, k, mode);
                    let seq = decompose(h, k, mode);
                    assert_eq!(par.is_some(), seq.is_some(), "{h:?} k={k}");
                    if let Some(hd) = par {
                        assert_eq!(hd.validate(h), Ok(()));
                        assert!(hd.width() <= k.max(1));
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_inputs() {
        let empty = Hypergraph::from_edge_lists(0, &[]);
        assert!(decide_parallel(&empty, 1, CandidateMode::Pruned));
        let hd = decompose_parallel(&empty, 1, CandidateMode::Pruned).unwrap();
        assert_eq!(hd.width(), 0);
        assert_eq!(hd.validate(&empty), Ok(()));
        let single = Hypergraph::from_edge_lists(2, &[&[0, 1]]);
        assert!(decide_parallel(&single, 1, CandidateMode::Full));
        let hd = decompose_parallel(&single, 1, CandidateMode::Full).unwrap();
        assert_eq!(hd.validate(&single), Ok(()));
        assert_eq!(hd.width(), 1);
    }
}
