//! A bounded map with least-recently-used eviction.
//!
//! The serving layer keeps two caches keyed by canonical-query text — the
//! decomposition cache ([`crate::DecompCache`]) and the plan cache in the
//! `service` crate — and both need the same policy: bounded memory,
//! recency-ordered eviction, and an eviction counter for observability.
//! This module is that policy, written once. It is *not* internally
//! synchronised; callers wrap it in the lock that fits their access
//! pattern (both caches use a `parking_lot::Mutex`, since the critical
//! section is a hash probe).
//!
//! The recency list is intrusive: entries live in a slab (`Vec`) and carry
//! `prev`/`next` slot indices, so `get`/`insert`/eviction are all O(1) —
//! no allocation once the slab has grown to capacity, and no scan to find
//! the eviction victim. Each entry's key is cloned into both the hash map
//! and the slab, so key with something cheap to clone (both caches use
//! `Arc<str>`, sharing one allocation per key).

use rustc_hash::FxHashMap;
use std::hash::Hash;

/// Sentinel slot index for "no neighbour".
const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A map with least-recently-used eviction once `capacity` is exceeded.
///
/// `get` refreshes recency; `insert` evicts the least recently used entry
/// when the map is full and the key is new. `capacity == None` disables
/// eviction (the unbounded regime the decomposition cache started with).
pub struct Lru<K, V> {
    map: FxHashMap<K, usize>,
    /// Slot storage; `None` marks slots on the free list.
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: Option<usize>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An LRU map evicting beyond `capacity` entries (`capacity ≥ 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity >= 1,
            "an LRU map needs room for at least one entry"
        );
        Self::build(Some(capacity))
    }

    /// A map that never evicts (the policy degenerates to recency
    /// bookkeeping only).
    pub fn unbounded() -> Self {
        Self::build(None)
    }

    fn build(capacity: Option<usize>) -> Self {
        Lru {
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no entry is live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted by capacity pressure so far (`clear` does not
    /// count).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let slot = *self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        self.slab[slot].as_ref().map(|e| &e.value)
    }

    /// Look up `key` without touching recency (observability reads).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let slot = *self.map.get(key)?;
        self.slab[slot].as_ref().map(|e| &e.value)
    }

    /// Insert `key → value` as most recently used, returning the evicted
    /// least-recently-used entry when capacity forced one out. Re-inserting
    /// a live key replaces its value (no eviction).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].as_mut().expect("live slot").value = value;
            self.detach(slot);
            self.attach_front(slot);
            return None;
        }
        let mut evicted = None;
        if let Some(cap) = self.capacity {
            if self.map.len() >= cap {
                let victim = self.tail;
                debug_assert_ne!(victim, NIL, "a full map has a tail");
                self.detach(victim);
                let entry = self.slab[victim].take().expect("tail slot is live");
                self.map.remove(&entry.key);
                self.free.push(victim);
                self.evictions += 1;
                evicted = Some((entry.key, entry.value));
            }
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(entry);
                slot
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
        evicted
    }

    /// Drop every entry (capacity and the eviction counter are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// The keys from most to least recently used (test/debug aid).
    pub fn keys_by_recency(&self) -> Vec<&K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != NIL {
            let entry = self.slab[slot].as_ref().expect("listed slot is live");
            out.push(&entry.key);
            slot = entry.next;
        }
        out
    }

    /// Unlink `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.slab[slot].as_ref().expect("live slot");
            (e.prev, e.next)
        };
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slab[p].as_mut().expect("live slot").next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slab[n].as_mut().expect("live slot").prev = prev,
        }
        let e = self.slab[slot].as_mut().expect("live slot");
        e.prev = NIL;
        e.next = NIL;
    }

    /// Link `slot` at the head (most recently used).
    fn attach_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let e = self.slab[slot].as_mut().expect("live slot");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head].as_mut().expect("live slot").prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru: Lru<&str, u32> = Lru::with_capacity(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        assert_eq!(lru.get(&"a"), Some(&1)); // a is now fresher than b
        let evicted = lru.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.len(), 2);
        assert!(lru.peek(&"b").is_none());
        assert_eq!(lru.keys_by_recency(), vec![&"c", &"a"]);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut lru: Lru<u32, u32> = Lru::with_capacity(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(lru.insert(1, 11).is_none(), "live-key update never evicts");
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.evictions(), 0);
        // 2 is now the LRU entry.
        assert_eq!(lru.insert(3, 30), Some((2, 20)));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut lru: Lru<u32, u32> = Lru::unbounded();
        for i in 0..1000 {
            assert!(lru.insert(i, i).is_none());
        }
        assert_eq!(lru.len(), 1000);
        assert_eq!(lru.evictions(), 0);
        assert_eq!(lru.capacity(), None);
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut lru: Lru<u32, u32> = Lru::with_capacity(3);
        for i in 0..100 {
            lru.insert(i, i);
        }
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions(), 97);
        assert!(lru.slab.len() <= 3, "slots are recycled, not leaked");
        assert_eq!(lru.keys_by_recency(), vec![&99, &98, &97]);
    }

    #[test]
    fn clear_keeps_the_counter() {
        let mut lru: Lru<u32, u32> = Lru::with_capacity(1);
        lru.insert(1, 1);
        lru.insert(2, 2);
        assert_eq!(lru.evictions(), 1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.evictions(), 1);
        lru.insert(3, 3);
        assert_eq!(lru.get(&3), Some(&3));
    }

    #[test]
    fn single_slot_capacity() {
        let mut lru: Lru<u32, u32> = Lru::with_capacity(1);
        lru.insert(1, 1);
        assert_eq!(lru.insert(2, 2), Some((1, 1)));
        assert_eq!(lru.get(&2), Some(&2));
        assert!(lru.get(&1).is_none());
        assert_eq!(lru.keys_by_recency(), vec![&2]);
    }

    #[test]
    fn heavy_mixed_traffic_stays_consistent() {
        // Cross-check against a naive model: vector of keys by recency.
        let mut lru: Lru<u64, u64> = Lru::with_capacity(8);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..4000 {
            // xorshift for a deterministic pseudo-random stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 24;
            if x.is_multiple_of(3) {
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                    model.insert(0, key);
                    assert_eq!(lru.get(&key), Some(&(key * 10)));
                } else {
                    assert!(lru.get(&key).is_none());
                }
            } else {
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                } else if model.len() == 8 {
                    model.pop();
                }
                model.insert(0, key);
                lru.insert(key, key * 10);
            }
            assert_eq!(
                lru.keys_by_recency()
                    .into_iter()
                    .copied()
                    .collect::<Vec<_>>(),
                model
            );
        }
        assert!(lru.evictions() > 0);
    }
}
