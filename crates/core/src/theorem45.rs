//! The constructive content of Theorem 4.5: *a conjunctive query is
//! acyclic iff `hw(Q) = 1`* — in the "if" direction, a width-1 hypertree
//! decomposition is rewritten into an actual join tree, following the
//! proof: complete the decomposition (every λ is then a singleton `{A}`
//! with `χ = var(A)` at its canonical node `v(A)`), redirect the children
//! of every duplicate node to the canonical one, and read the remaining
//! tree as a join tree.
//!
//! Together with GYO ([`hypergraph::acyclic`]) this closes the loop: GYO
//! certifies acyclicity with a join tree, `k-decomp` at `k = 1` certifies
//! it with a decomposition, and this module converts between the two —
//! each converted artifact is checked by the other side's validator in the
//! tests.

use crate::hypertree::HypertreeDecomposition;
use hypergraph::{EdgeId, Hypergraph, Ix, JoinTree, NodeId, RootedTree};

/// Convert a width-1 hypertree decomposition of `h` into a join tree
/// (the "if" direction of Theorem 4.5). Panics if `hd` is not a valid
/// width-≤1 decomposition; returns `None` when `h` has no edges (join
/// trees need at least one atom).
pub fn join_tree_of_width1(h: &Hypergraph, hd: &HypertreeDecomposition) -> Option<JoinTree> {
    assert!(hd.width() <= 1, "Theorem 4.5 needs a width-1 decomposition");
    assert_eq!(
        hd.validate(h),
        Ok(()),
        "input must be a valid decomposition"
    );
    if h.num_edges() == 0 {
        return None;
    }

    // Completion: afterwards every atom A sits on some node with
    // λ = {A}; since the width is 1 and χ ⊆ var(λ), nodes carrying A in λ
    // and covering var(A) in χ have χ = var(A) exactly.
    let complete = hd.complete(h);
    let tree = complete.tree();

    // Mutable arena over the completed tree.
    let n = complete.len();
    let mut children: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            tree.children(NodeId::new(i))
                .iter()
                .map(|c| c.index())
                .collect()
        })
        .collect();
    let mut parent: Vec<Option<usize>> = (0..n)
        .map(|i| tree.parent(NodeId::new(i)).map(|p| p.index()))
        .collect();
    let atom_of: Vec<Option<EdgeId>> = (0..n)
        .map(|i| complete.lambda(NodeId::new(i)).first())
        .collect();

    let depth = |parent: &Vec<Option<usize>>, mut v: usize| -> usize {
        let mut d = 0;
        while let Some(p) = parent[v] {
            d += 1;
            v = p;
        }
        d
    };

    let mut alive = vec![true; n];
    let mut root = 0usize;

    // Pre-pass: delete λ-empty nodes (condition 3 forces χ = ∅ there, so
    // no variable connects through them; their child subtrees are
    // variable-disjoint and may be stitched anywhere).
    for v in 0..n {
        if atom_of[v].is_some() {
            continue;
        }
        let kids = std::mem::take(&mut children[v]);
        alive[v] = false;
        match parent[v] {
            Some(p) => {
                children[p].retain(|&c| c != v);
                for &c in &kids {
                    parent[c] = Some(p);
                }
                children[p].extend(kids);
            }
            None => {
                // v is the current root: promote the first child, hang the
                // rest under it. A valid decomposition of a hypergraph
                // with edges has at least one atom-carrying node.
                let mut kids = kids.into_iter();
                let new_root = kids.next().expect("edges exist, so nodes remain");
                parent[new_root] = None;
                root = new_root;
                for c in kids {
                    parent[c] = Some(new_root);
                    children[new_root].push(c);
                }
            }
        }
    }

    // Canonical node per atom: the topmost node with λ = {A} and
    // χ = var(A) (ties broken by id). For the root, condition 4 forces
    // χ = var(λ), so the root is always canonical for its atom; more
    // generally a canonical target is never a proper descendant of the
    // node merged into it (topmost-ness), so no cycles can form.
    let mut canonical: Vec<Option<usize>> = vec![None; h.num_edges()];
    for v in 0..n {
        if !alive[v] {
            continue;
        }
        let Some(a) = atom_of[v] else { continue };
        if complete.chi(NodeId::new(v)) != h.edge_vertices(a) {
            continue;
        }
        match canonical[a.index()] {
            None => canonical[a.index()] = Some(v),
            Some(best) => {
                if depth(&parent, v) < depth(&parent, best) {
                    canonical[a.index()] = Some(v);
                }
            }
        }
    }

    // Merge every other atom-carrying node into its atom's canonical node
    // (nodes with χ ⊊ var(A) merge there too: their χ is contained in the
    // canonical node's χ, so connectedness survives the rewiring).
    for v in 0..n {
        if !alive[v] {
            continue;
        }
        let a = atom_of[v].expect("empty nodes were removed");
        let target = canonical[a.index()].expect("completion placed every atom");
        if target == v {
            continue;
        }
        let kids = std::mem::take(&mut children[v]);
        for &c in &kids {
            parent[c] = Some(target);
        }
        children[target].extend(kids);
        match parent[v] {
            Some(p) => children[p].retain(|&c| c != v),
            None => {
                // v was the root; the canonical node (topmost for the
                // root's atom) must be the root itself, so this branch is
                // unreachable — keep it as a hard error.
                unreachable!("the root is canonical for its own atom");
            }
        }
        alive[v] = false;
    }

    // Walk up to the surviving root (alive nodes always have alive
    // parents: deletions re-home children immediately).
    while let Some(p) = parent[root] {
        debug_assert!(alive[p]);
        root = p;
    }
    if !alive[root] {
        root = canonical.iter().flatten().copied().next()?;
        while let Some(p) = parent[root] {
            root = p;
        }
    }

    // Rebuild as a JoinTree.
    let mut out_tree = RootedTree::new();
    let mut node_edge = vec![atom_of[root].expect("canonical nodes carry an atom")];
    let mut stack = vec![(out_tree.root(), root)];
    while let Some((node, old)) = stack.pop() {
        for &c in &children[old] {
            debug_assert!(alive[c]);
            let child = out_tree.add_child(node);
            node_edge.push(atom_of[c].expect("canonical nodes carry an atom"));
            debug_assert_eq!(node_edge.len(), child.index() + 1);
            stack.push((child, c));
        }
    }
    let jt = JoinTree::new(out_tree, node_edge);
    debug_assert_eq!(jt.validate(h), Ok(()), "Theorem 4.5 construction failed");
    Some(jt)
}

/// The "only if" direction of Theorem 4.5: a join tree *is* a width-1
/// hypertree decomposition with `λ(p) = {A_p}`, `χ(p) = var(A_p)`.
pub fn width1_of_join_tree(h: &Hypergraph, jt: &JoinTree) -> HypertreeDecomposition {
    let tree = jt.tree().clone();
    let mut chi = Vec::with_capacity(tree.len());
    let mut lambda = Vec::with_capacity(tree.len());
    for node in tree.nodes() {
        let e = jt.edge_at(node);
        chi.push(h.edge_vertices(e).clone());
        lambda.push(hypergraph::EdgeSet::singleton(h.num_edges(), e));
    }
    let hd = HypertreeDecomposition::new(tree, chi, lambda);
    debug_assert_eq!(hd.validate(h), Ok(()));
    hd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdecomp::{decompose, CandidateMode};
    use hypergraph::acyclic;

    fn q2() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("t", &["P", "C", "A"]);
        b.edge_by_names("e", &["S", "Cp", "R"]);
        b.edge_by_names("p", &["P", "S"]);
        b.build()
    }

    #[test]
    fn roundtrip_on_q2() {
        let h = q2();
        // GYO join tree → width-1 HD → join tree again.
        let jt = acyclic::join_tree(&h).unwrap();
        let hd = width1_of_join_tree(&h, &jt);
        assert_eq!(hd.width(), 1);
        let jt2 = join_tree_of_width1(&h, &hd).unwrap();
        assert_eq!(jt2.validate(&h), Ok(()));
    }

    #[test]
    fn kdecomp_witness_converts_to_join_tree() {
        for edges in [
            vec![vec![0usize, 1], vec![1, 2], vec![2, 3]],
            vec![vec![0, 1, 2], vec![1, 2], vec![2], vec![2, 3]],
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0, 1], vec![0, 1], vec![1, 2]],
        ] {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap();
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            let hd = decompose(&h, 1, CandidateMode::Full).expect("acyclic");
            let jt = join_tree_of_width1(&h, &hd).expect("edges exist");
            assert_eq!(jt.validate(&h), Ok(()), "on {edges:?}");
            assert_eq!(jt.len(), h.num_edges());
        }
    }

    #[test]
    fn empty_hypergraph_has_no_join_tree() {
        let h = Hypergraph::from_edge_lists(0, &[]);
        let hd = decompose(&h, 1, CandidateMode::Full).unwrap();
        assert!(join_tree_of_width1(&h, &hd).is_none());
    }

    #[test]
    #[should_panic(expected = "width-1")]
    fn width2_inputs_are_rejected() {
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        let hd = decompose(&triangle, 2, CandidateMode::Full).unwrap();
        join_tree_of_width1(&triangle, &hd);
    }
}
