//! Hypertree decompositions (Definition 4.1 of the paper).
//!
//! A hypertree for a hypergraph `H` is a triple `⟨T, χ, λ⟩`: a rooted tree
//! `T` with a set of variables `χ(p)` and a set of edges `λ(p)` on each
//! node. It is a *hypertree decomposition* iff
//!
//! 1. every edge `A` has a node `p` with `var(A) ⊆ χ(p)` (coverage);
//! 2. for every variable `Y`, `{p | Y ∈ χ(p)}` induces a connected subtree
//!    (connectedness condition);
//! 3. `χ(p) ⊆ var(λ(p))` for every node;
//! 4. `var(λ(p)) ∩ χ(T_p) ⊆ χ(p)` for every node (the "special condition":
//!    a variable that λ re-introduces below `p` must already be in `χ(p)`).
//!
//! The width is `max_p |λ(p)|`; `hw(H)` is the minimum width over all
//! hypertree decompositions. The validator here is deliberately independent
//! of the solvers in [`crate::kdecomp`]: everything a solver produces is
//! re-checked against the definition.

use hypergraph::{EdgeSet, Hypergraph, Ix, NodeId, RootedTree, VertexId, VertexSet};
use std::fmt;

/// A hypertree decomposition candidate `⟨T, χ, λ⟩`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HypertreeDecomposition {
    tree: RootedTree,
    chi: Vec<VertexSet>,
    lambda: Vec<EdgeSet>,
}

/// Which definition a decomposition is checked against.
///
/// A *generalized* hypertree decomposition (GHD) drops the descendant
/// condition (condition 4 of Definition 4.1). Every width-`k` GHD still
/// makes the Lemma 4.6 reduction work — conditions 1–3 are all the
/// evaluation pipeline needs — so heuristic engines that cannot guarantee
/// the descendant condition validate in [`ValidityMode::Generalized`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ValidityMode {
    /// All four conditions of Definition 4.1 (the paper's hypertree
    /// decompositions; width minimum is `hw(H)`).
    #[default]
    Hypertree,
    /// Conditions 1–3 only (generalized hypertree decompositions; width
    /// minimum is `ghw(H) ≤ hw(H)`).
    Generalized,
}

/// A violation of Definition 4.1 (or of structural sanity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HdViolation {
    /// Condition 1: this edge's variables are covered by no `χ(p)`.
    UncoveredEdge(hypergraph::EdgeId),
    /// Condition 2: this variable's `χ`-occurrences are not connected.
    DisconnectedVertex(VertexId),
    /// Condition 3: `χ(p) ⊄ var(λ(p))` at this node.
    ChiNotCoveredByLambda(NodeId),
    /// Condition 4: `var(λ(p)) ∩ χ(T_p) ⊄ χ(p)` at this node.
    SpecialConditionViolated(NodeId),
}

impl fmt::Display for HdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdViolation::UncoveredEdge(e) => write!(f, "condition 1: edge {e} uncovered"),
            HdViolation::DisconnectedVertex(v) => {
                write!(f, "condition 2: variable {v} occurrences disconnected")
            }
            HdViolation::ChiNotCoveredByLambda(n) => {
                write!(
                    f,
                    "condition 3: chi(p) not within var(lambda(p)) at node {n}"
                )
            }
            HdViolation::SpecialConditionViolated(n) => {
                write!(
                    f,
                    "condition 4: descendant chi reuses lambda variables at node {n}"
                )
            }
        }
    }
}

impl HypertreeDecomposition {
    /// Assemble from parts. `chi` and `lambda` must have one entry per tree
    /// node; semantic validity is checked by [`Self::validate`].
    pub fn new(tree: RootedTree, chi: Vec<VertexSet>, lambda: Vec<EdgeSet>) -> Self {
        assert_eq!(tree.len(), chi.len(), "one chi label per node");
        assert_eq!(tree.len(), lambda.len(), "one lambda label per node");
        HypertreeDecomposition { tree, chi, lambda }
    }

    /// The trivial one-node decomposition with `λ = all edges`,
    /// `χ = var(H)`: always valid, width `|edges(H)|`.
    pub fn trivial(h: &Hypergraph) -> Self {
        let tree = RootedTree::new();
        HypertreeDecomposition {
            tree,
            chi: vec![h.vertices_of_edges(&h.all_edges())],
            lambda: vec![h.all_edges()],
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// `χ(p)`.
    pub fn chi(&self, p: NodeId) -> &VertexSet {
        &self.chi[p.index()]
    }

    /// `λ(p)`.
    pub fn lambda(&self, p: NodeId) -> &EdgeSet {
        &self.lambda[p.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Decomposition trees always have at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Width: `max_p |λ(p)|`.
    pub fn width(&self) -> usize {
        self.lambda.iter().map(EdgeSet::len).max().unwrap_or(0)
    }

    /// `χ(T_p)`: the union of `χ` over the subtree rooted at `p`.
    pub fn chi_subtree(&self, p: NodeId) -> VertexSet {
        let mut out = self.chi[p.index()].clone();
        for n in self.tree.subtree(p) {
            out.union_with(&self.chi[n.index()]);
        }
        out
    }

    /// Check all four conditions of Definition 4.1 against `h`, collecting
    /// every violation (an empty list means the decomposition is valid).
    pub fn violations(&self, h: &Hypergraph) -> Vec<HdViolation> {
        self.violations_with(h, ValidityMode::Hypertree)
    }

    /// [`Self::violations`] under an explicit [`ValidityMode`]:
    /// `Generalized` skips condition 4 (the descendant condition), which is
    /// exactly the GHD relaxation.
    pub fn violations_with(&self, h: &Hypergraph, mode: ValidityMode) -> Vec<HdViolation> {
        let mut out = Vec::new();

        // Condition 1: coverage of every edge.
        for e in h.edges() {
            let vars = h.edge_vertices(e);
            if !self
                .tree
                .nodes()
                .any(|p| vars.is_subset_of(&self.chi[p.index()]))
            {
                out.push(HdViolation::UncoveredEdge(e));
            }
        }

        // Condition 2: connectedness of each variable's chi occurrences.
        for v in h.vertices() {
            let mut members = 0usize;
            let mut tops = 0usize;
            for n in self.tree.nodes() {
                if !self.chi[n.index()].contains(v) {
                    continue;
                }
                members += 1;
                let parent_in = self
                    .tree
                    .parent(n)
                    .map(|p| self.chi[p.index()].contains(v))
                    .unwrap_or(false);
                if !parent_in {
                    tops += 1;
                }
            }
            if members > 0 && tops != 1 {
                out.push(HdViolation::DisconnectedVertex(v));
            }
        }

        // Condition 3 (both modes) and condition 4 (hypertree mode only)
        // per node.
        for p in self.tree.nodes() {
            let lambda_vars = h.vertices_of_edges(&self.lambda[p.index()]);
            if !self.chi[p.index()].is_subset_of(&lambda_vars) {
                out.push(HdViolation::ChiNotCoveredByLambda(p));
            }
            if mode == ValidityMode::Hypertree {
                let mut reused = lambda_vars;
                reused.intersect_with(&self.chi_subtree(p));
                if !reused.is_subset_of(&self.chi[p.index()]) {
                    out.push(HdViolation::SpecialConditionViolated(p));
                }
            }
        }

        out
    }

    /// `Ok(())` iff this is a hypertree decomposition of `h`.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), Vec<HdViolation>> {
        let v = self.violations(h);
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// `Ok(())` iff this is a *generalized* hypertree decomposition of `h`
    /// (conditions 1–3 of Definition 4.1; the descendant condition is not
    /// required). Everything the Lemma 4.6 evaluation pipeline consumes is
    /// checked.
    pub fn validate_ghd(&self, h: &Hypergraph) -> Result<(), Vec<HdViolation>> {
        let v = self.violations_with(h, ValidityMode::Generalized);
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// `true` iff this is a *complete* decomposition of `h`
    /// (Definition 4.2): every edge `A` has a node `p` with
    /// `var(A) ⊆ χ(p)` **and** `A ∈ λ(p)`.
    pub fn is_complete(&self, h: &Hypergraph) -> bool {
        h.edges().all(|e| {
            let vars = h.edge_vertices(e);
            self.tree.nodes().any(|p| {
                self.lambda[p.index()].contains(e) && vars.is_subset_of(&self.chi[p.index()])
            })
        })
    }

    /// Transform into a complete decomposition (Lemma 4.4): every edge not
    /// yet carried by a covering node gets a fresh child
    /// `λ = {A}, χ = var(A)` under some node that covers it. Width and
    /// validity are preserved; the result has `O(‖Q‖ + ‖HD‖)` nodes.
    pub fn complete(&self, h: &Hypergraph) -> HypertreeDecomposition {
        let mut out = self.clone();
        for e in h.edges() {
            let vars = h.edge_vertices(e);
            let carried = out.tree.nodes().any(|p| {
                out.lambda[p.index()].contains(e) && vars.is_subset_of(&out.chi[p.index()])
            });
            if carried {
                continue;
            }
            let host = out
                .tree
                .nodes()
                .find(|&p| vars.is_subset_of(&out.chi[p.index()]))
                .expect("complete() requires a valid decomposition (condition 1)");
            let child = out.tree.add_child(host);
            debug_assert_eq!(child.index(), out.chi.len());
            out.chi.push(vars.clone());
            out.lambda.push(EdgeSet::singleton(h.num_edges(), e));
        }
        out
    }

    /// Render the decomposition in the paper's *atom representation*
    /// (Fig. 7): each node shows its λ atoms, with variables that are not in
    /// `χ(p)` replaced by `_`.
    pub fn display(&self, h: &Hypergraph) -> String {
        let mut out = String::new();
        for n in self.tree.pre_order() {
            let indent = "  ".repeat(self.tree.depth(n));
            let atoms: Vec<String> = self.lambda[n.index()]
                .iter()
                .map(|e| {
                    let args: Vec<&str> = h
                        .edge_vertex_list(e)
                        .iter()
                        .map(|&v| {
                            if self.chi[n.index()].contains(v) {
                                h.vertex_name(v)
                            } else {
                                "_"
                            }
                        })
                        .collect();
                    format!("{}({})", h.edge_name(e), args.join(","))
                })
                .collect();
            out.push_str(&format!("{indent}{{{}}}\n", atoms.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::EdgeId;

    /// Q1 of Example 1.1.
    fn q1() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("enrolled", &["S", "C", "R"]);
        b.edge_by_names("teaches", &["P", "C", "A"]);
        b.edge_by_names("parent", &["P", "S"]);
        b.build()
    }

    fn vset(h: &Hypergraph, names: &[&str]) -> VertexSet {
        let mut s = h.empty_vertex_set();
        for n in names {
            s.insert(h.vertex_by_name(n).unwrap());
        }
        s
    }

    fn eset(h: &Hypergraph, names: &[&str]) -> EdgeSet {
        let mut s = h.empty_edge_set();
        for n in names {
            s.insert(h.edge_by_name(n).unwrap());
        }
        s
    }

    /// Fig. 6a: the 2-width HD of Q1 — root χ={P,S,C,A},
    /// λ={teaches,parent}; child χ={S,C,R}, λ={enrolled}. (The root χ
    /// includes A so that `teaches` is fully covered, making the
    /// decomposition complete per Example 4.3.)
    pub(crate) fn fig6a(h: &Hypergraph) -> HypertreeDecomposition {
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        HypertreeDecomposition::new(
            tree,
            vec![vset(h, &["P", "S", "C", "A"]), vset(h, &["S", "C", "R"])],
            vec![eset(h, &["teaches", "parent"]), eset(h, &["enrolled"])],
        )
    }

    #[test]
    fn fig6a_is_a_valid_width2_hd() {
        let h = q1();
        let hd = fig6a(&h);
        assert_eq!(hd.validate(&h), Ok(()));
        assert_eq!(hd.width(), 2);
        assert!(hd.is_complete(&h));
    }

    #[test]
    fn trivial_decomposition_is_valid() {
        let h = q1();
        let hd = HypertreeDecomposition::trivial(&h);
        assert_eq!(hd.validate(&h), Ok(()));
        assert_eq!(hd.width(), 3);
        assert!(hd.is_complete(&h));
    }

    #[test]
    fn condition1_violation_detected() {
        let h = q1();
        // Single node that covers only two atoms.
        let hd = HypertreeDecomposition::new(
            RootedTree::new(),
            vec![vset(&h, &["P", "S", "C", "A"])],
            vec![eset(&h, &["teaches", "parent"])],
        );
        let violations = hd.violations(&h);
        assert!(violations.contains(&HdViolation::UncoveredEdge(EdgeId(0))));
    }

    #[test]
    fn condition2_violation_detected() {
        let h = q1();
        // S occurs at root and grandchild but not at the middle node.
        let mut tree = RootedTree::new();
        let mid = tree.add_child(tree.root());
        tree.add_child(mid);
        let hd = HypertreeDecomposition::new(
            tree,
            vec![
                vset(&h, &["S", "C", "R"]),
                vset(&h, &["P", "C", "A"]),
                vset(&h, &["P", "S"]),
            ],
            vec![
                eset(&h, &["enrolled"]),
                eset(&h, &["teaches"]),
                eset(&h, &["parent"]),
            ],
        );
        let s = h.vertex_by_name("S").unwrap();
        assert!(hd
            .violations(&h)
            .contains(&HdViolation::DisconnectedVertex(s)));
    }

    #[test]
    fn condition3_violation_detected() {
        let h = q1();
        // χ mentions A but λ = {parent} does not provide it.
        let hd = HypertreeDecomposition::new(
            RootedTree::new(),
            vec![vset(&h, &["P", "S", "A"])],
            vec![eset(&h, &["parent"])],
        );
        assert!(hd
            .violations(&h)
            .contains(&HdViolation::ChiNotCoveredByLambda(NodeId(0))));
    }

    #[test]
    fn condition4_violation_detected() {
        let h = q1();
        // Root: λ={enrolled}, χ={S} — drops C — but C reappears below in a
        // child that also covers teaches and parent; then R never connects.
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        let hd = HypertreeDecomposition::new(
            tree,
            vec![vset(&h, &["S"]), vset(&h, &["P", "S", "C", "A", "R"])],
            vec![
                eset(&h, &["enrolled"]),
                eset(&h, &["teaches", "parent", "enrolled"]),
            ],
        );
        // var(λ(root)) = {S,C,R}; χ(T_root) contains C and R but χ(root)
        // does not: condition 4 fires at the root.
        assert!(hd
            .violations(&h)
            .contains(&HdViolation::SpecialConditionViolated(NodeId(0))));
        // The same triple is a perfectly good *generalized* decomposition:
        // conditions 1–3 hold, only the descendant condition fails.
        assert_eq!(hd.validate_ghd(&h), Ok(()));
        assert!(hd.violations_with(&h, ValidityMode::Generalized).is_empty());
    }

    #[test]
    fn ghd_mode_still_detects_conditions_1_to_3() {
        let h = q1();
        // Missing edge coverage is a violation in both modes.
        let hd = HypertreeDecomposition::new(
            RootedTree::new(),
            vec![vset(&h, &["P", "S", "C", "A"])],
            vec![eset(&h, &["teaches", "parent"])],
        );
        assert!(hd.validate_ghd(&h).is_err());
        // So is χ ⊄ var(λ).
        let hd = HypertreeDecomposition::new(
            RootedTree::new(),
            vec![vset(&h, &["P", "S", "A"])],
            vec![eset(&h, &["parent"])],
        );
        assert!(hd
            .violations_with(&h, ValidityMode::Generalized)
            .contains(&HdViolation::ChiNotCoveredByLambda(NodeId(0))));
        // Every valid HD is a valid GHD.
        assert_eq!(fig6a(&h).validate_ghd(&h), Ok(()));
    }

    #[test]
    fn completion_adds_missing_atoms() {
        let h = q1();
        // A complete width-2 HD (Fig. 6a shape).
        let hd = fig6a(&h);
        assert!(hd.is_complete(&h));
        // An HD that covers `parent` without carrying it in any λ.
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        let hd = HypertreeDecomposition::new(
            tree,
            vec![vset(&h, &["P", "S", "C", "A"]), vset(&h, &["S", "C", "R"])],
            vec![eset(&h, &["teaches", "parent"]), eset(&h, &["enrolled"])],
        );
        assert_eq!(hd.validate(&h), Ok(()));
        assert!(hd.is_complete(&h));

        // Width-3 single-node decomposition carrying only two atoms.
        let hd = HypertreeDecomposition::new(
            RootedTree::new(),
            vec![vset(&h, &["P", "S", "C", "A", "R"])],
            vec![eset(&h, &["teaches", "parent", "enrolled"])],
        );
        let mut lambda_small = hd.clone();
        lambda_small.lambda[0] = eset(&h, &["teaches", "enrolled"]);
        // parent is covered but not carried.
        assert_eq!(lambda_small.validate(&h), Ok(()));
        assert!(!lambda_small.is_complete(&h));
        let completed = lambda_small.complete(&h);
        assert!(completed.is_complete(&h));
        assert_eq!(completed.validate(&h), Ok(()));
        assert_eq!(completed.width(), 2);
        assert_eq!(completed.len(), 2);
    }

    #[test]
    fn chi_subtree_unions() {
        let h = q1();
        let hd = fig6a(&h);
        let root_union = hd.chi_subtree(NodeId(0));
        assert_eq!(root_union, vset(&h, &["P", "S", "C", "A", "R"]));
        assert_eq!(hd.chi_subtree(NodeId(1)), vset(&h, &["S", "C", "R"]));
    }

    #[test]
    fn atom_representation_masks_non_chi_vars() {
        let h = q1();
        // Root drops A from χ: teaches(P,C,A) renders as teaches(_,C,_)-ish.
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        let hd = HypertreeDecomposition::new(
            tree,
            vec![vset(&h, &["P", "S", "C"]), vset(&h, &["S", "C", "R"])],
            vec![eset(&h, &["teaches", "parent"]), eset(&h, &["enrolled"])],
        );
        let s = hd.display(&h);
        assert!(s.contains("teaches("), "{s}");
        assert!(s.contains(",_"), "expected a masked variable in {s}");
        assert!(s.contains("enrolled(S,C,R)"), "{s}");
        // Fig. 6a itself masks nothing.
        assert!(!fig6a(&h).display(&h).contains('_'));
    }

    #[test]
    fn width_of_empty_lambda() {
        let h = Hypergraph::from_edge_lists(0, &[]);
        let hd = HypertreeDecomposition::new(
            RootedTree::new(),
            vec![VertexSet::empty(0)],
            vec![EdgeSet::empty(0)],
        );
        assert_eq!(hd.width(), 0);
        assert_eq!(hd.validate(&h), Ok(()));
    }
}
