//! Enumeration of small edge subsets, shared by the decomposition solvers.
//!
//! The solvers' innermost loop walks every `≤ k`-subset of a candidate
//! pool. [`SubsetState`] advances one combination in place and lends out
//! its index buffer, so a full enumeration performs **one** allocation;
//! the [`SubsetIter`] wrapper keeps the old cloning [`Iterator`] shape for
//! tests and non-hot callers.

/// In-place enumerator over all subsets of `{0..n}` of size `1..=k`, by
/// increasing size and lexicographically within a size.
pub struct SubsetState {
    n: usize,
    k: usize,
    size: usize,
    indices: Vec<usize>,
    started: bool,
}

impl SubsetState {
    /// Enumerate subsets of `{0..n}` of size `1..=k` (k is clamped to n).
    pub fn new(n: usize, k: usize) -> Self {
        SubsetState {
            n,
            k: k.min(n),
            size: 1,
            indices: vec![0],
            started: false,
        }
    }

    /// Advance to the next subset and lend out its indices, or `None` when
    /// the enumeration is exhausted. The returned slice is valid until the
    /// next call and must not be stored.
    pub fn advance(&mut self) -> Option<&[usize]> {
        if self.n == 0 || self.k == 0 {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.indices);
        }
        // Advance the current combination of `size` elements.
        let s = self.size;
        let mut i = s;
        while i > 0 {
            i -= 1;
            if self.indices[i] < self.n - (s - i) {
                self.indices[i] += 1;
                for j in i + 1..s {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                return Some(&self.indices);
            }
        }
        // Move to the next size.
        if self.size < self.k {
            self.size += 1;
            self.indices.clear();
            self.indices.extend(0..self.size);
            return Some(&self.indices);
        }
        None
    }
}

/// Iterates over all subsets of `{0..n}` of size `1..=k`, cloning each one
/// — a thin wrapper over [`SubsetState`] kept for tests and callers off
/// the hot path.
pub struct SubsetIter {
    state: SubsetState,
}

/// All subsets of `{0..n}` of size `1..=k` (k is clamped to n).
pub fn subsets(n: usize, k: usize) -> SubsetIter {
    SubsetIter {
        state: SubsetState::new(n, k),
    }
}

impl Iterator for SubsetIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        self.state.advance().map(<[usize]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomials() {
        assert_eq!(subsets(4, 2).count(), 4 + 6);
        assert_eq!(subsets(5, 3).count(), 5 + 10 + 10);
        assert_eq!(subsets(0, 3).count(), 0);
        assert_eq!(subsets(3, 0).count(), 0);
        assert_eq!(subsets(3, 7).count(), 7, "k clamps to n");
    }

    #[test]
    fn ordered_smallest_first() {
        let all: Vec<_> = subsets(3, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn no_duplicates() {
        let all: Vec<_> = subsets(6, 3).collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn state_agrees_with_iterator() {
        // The lending enumerator and the cloning wrapper see the same
        // sequence (the wrapper *is* the state, but keep them honest).
        for (n, k) in [(5usize, 2usize), (6, 3), (1, 1), (4, 4)] {
            let mut st = SubsetState::new(n, k);
            let mut from_state = Vec::new();
            while let Some(s) = st.advance() {
                from_state.push(s.to_vec());
            }
            let from_iter: Vec<_> = subsets(n, k).collect();
            assert_eq!(from_state, from_iter, "n={n} k={k}");
        }
    }
}
