//! Enumeration of small edge subsets, shared by the decomposition solvers.

/// Iterates over all subsets of `{0..n}` of size `1..=k`, by increasing
/// size and lexicographically within a size.
pub struct SubsetIter {
    n: usize,
    k: usize,
    size: usize,
    indices: Vec<usize>,
    started: bool,
}

/// All subsets of `{0..n}` of size `1..=k` (k is clamped to n).
pub fn subsets(n: usize, k: usize) -> SubsetIter {
    SubsetIter {
        n,
        k: k.min(n),
        size: 1,
        indices: vec![0],
        started: false,
    }
}

impl Iterator for SubsetIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.n == 0 || self.k == 0 {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.indices.clone());
        }
        // Advance the current combination of `size` elements.
        let s = self.size;
        let mut i = s;
        while i > 0 {
            i -= 1;
            if self.indices[i] < self.n - (s - i) {
                self.indices[i] += 1;
                for j in i + 1..s {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                return Some(self.indices.clone());
            }
        }
        // Move to the next size.
        if self.size < self.k {
            self.size += 1;
            self.indices = (0..self.size).collect();
            return Some(self.indices.clone());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomials() {
        assert_eq!(subsets(4, 2).count(), 4 + 6);
        assert_eq!(subsets(5, 3).count(), 5 + 10 + 10);
        assert_eq!(subsets(0, 3).count(), 0);
        assert_eq!(subsets(3, 0).count(), 0);
        assert_eq!(subsets(3, 7).count(), 7, "k clamps to n");
    }

    #[test]
    fn ordered_smallest_first() {
        let all: Vec<_> = subsets(3, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn no_duplicates() {
        let all: Vec<_> = subsets(6, 3).collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }
}
