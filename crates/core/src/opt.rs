//! Exact hypertree width and optimal decompositions.
//!
//! `hw(H)` is found by iterative deepening on `k` (each `k-decomp` run is
//! polynomial for fixed `k`, Theorem 5.16); the trivial single-node
//! decomposition bounds the search by `|edges(H)|`. Theorem 6.1(a) — every
//! width-`k` query decomposition is a width-`k` hypertree decomposition
//! with `χ(p) = var(λ(p))` — is implemented by
//! [`from_query_decomposition`].

use crate::hypertree::HypertreeDecomposition;
use crate::kdecomp::{CandidateMode, Solver};
use crate::querydecomp::QueryDecomposition;
use hypergraph::{Hypergraph, NodeId};

/// The exact hypertree width of `h` (0 for edgeless hypergraphs).
pub fn hypertree_width(h: &Hypergraph) -> usize {
    hypertree_width_with(h, CandidateMode::Pruned)
}

/// [`hypertree_width`] with an explicit candidate mode.
pub fn hypertree_width_with(h: &Hypergraph, mode: CandidateMode) -> usize {
    deepen(h, mode).map_or(0, |(k, _)| k)
}

/// An optimal (minimum-width, normal-form) hypertree decomposition of `h`.
pub fn optimal_decomposition(h: &Hypergraph) -> HypertreeDecomposition {
    optimal_decomposition_with(h, CandidateMode::Pruned)
}

/// [`optimal_decomposition`] with an explicit candidate mode.
pub fn optimal_decomposition_with(h: &Hypergraph, mode: CandidateMode) -> HypertreeDecomposition {
    match deepen(h, mode) {
        // Warm start: the solver that proved hw ≤ k keeps its memo, so
        // extraction is a read-back, not a second search.
        Some((_, mut solver)) => solver
            .decompose()
            .expect("k = hw(h) must admit a decomposition"),
        None => Solver::new(h, 1, mode)
            .decompose()
            .expect("edgeless hypergraphs have the trivial decomposition"),
    }
}

/// Iterative deepening on `k` (each run is polynomial for fixed `k`,
/// Theorem 5.16; the trivial single-node decomposition bounds the search
/// by `|edges(H)|`). Returns `hw(h)` together with the successful solver —
/// its memo is warm, so the caller can extract the witness without
/// re-running `decide` from scratch. `None` for edgeless hypergraphs.
fn deepen(h: &Hypergraph, mode: CandidateMode) -> Option<(usize, Solver<'_>)> {
    let m = h
        .edges()
        .filter(|&e| !h.edge_vertices(e).is_empty())
        .count();
    for k in 1..=m {
        let mut solver = Solver::new(h, k, mode);
        if solver.decide() {
            return Some((k, solver));
        }
    }
    None
}

/// Theorem 6.1(a): reinterpret a (pure) query decomposition as a hypertree
/// decomposition of the same width by setting `χ(p) = var(λ(p))`.
pub fn from_query_decomposition(h: &Hypergraph, qd: &QueryDecomposition) -> HypertreeDecomposition {
    let tree = qd.tree().clone();
    let mut chi = Vec::with_capacity(tree.len());
    let mut lambda = Vec::with_capacity(tree.len());
    for n in tree.nodes() {
        let label = qd.label(n).clone();
        chi.push(h.vertices_of_edges(&label));
        lambda.push(label);
    }
    HypertreeDecomposition::new(tree, chi, lambda)
}

/// Check `hw(h) = expected` and return a validated witness of that width.
/// Test helper used across the workspace's experiment code.
pub fn assert_width(h: &Hypergraph, expected: usize) -> HypertreeDecomposition {
    let hw = hypertree_width(h);
    assert_eq!(hw, expected, "hypertree width mismatch");
    let hd = optimal_decomposition(h);
    assert_eq!(hd.validate(h), Ok(()));
    assert_eq!(hd.width(), expected);
    hd
}

/// `true` iff node `p` of `hd` is a leaf covering nothing new — used by
/// width statistics in the experiments harness.
pub fn is_redundant_leaf(hd: &HypertreeDecomposition, p: NodeId) -> bool {
    hd.tree().is_leaf(p)
        && hd
            .tree()
            .parent(p)
            .map(|parent| hd.chi(p).is_subset_of(hd.chi(parent)))
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::acyclic;

    #[test]
    fn widths_of_known_shapes() {
        let path = Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert_eq!(hypertree_width(&path), 1);
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(hypertree_width(&triangle), 2);
        let empty = Hypergraph::from_edge_lists(3, &[]);
        assert_eq!(hypertree_width(&empty), 0);
    }

    #[test]
    fn acyclic_iff_width_one_matches_gyo() {
        // Theorem 4.5 cross-checked against the independent GYO oracle.
        let shapes: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1], vec![1, 2]],
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]],
        ];
        for edges in shapes {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap_or(0);
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            assert_eq!(
                acyclic::is_acyclic(&h),
                hypertree_width(&h) <= 1,
                "mismatch on {edges:?}"
            );
        }
    }

    #[test]
    fn optimal_decomposition_validates() {
        let h =
            Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 0]]);
        let hd = optimal_decomposition(&h);
        assert_eq!(hd.width(), 2);
        assert_eq!(hd.validate(&h), Ok(()));
    }

    #[test]
    fn modes_agree_on_width() {
        let h = Hypergraph::from_edge_lists(5, &[&[0, 1, 2], &[2, 3], &[3, 4], &[4, 0], &[1, 3]]);
        assert_eq!(
            hypertree_width_with(&h, CandidateMode::Full),
            hypertree_width_with(&h, CandidateMode::Pruned)
        );
    }
}
