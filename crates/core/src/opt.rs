//! Exact hypertree width and optimal decompositions.
//!
//! `hw(H)` is found by iterative deepening on `k` (each `k-decomp` run is
//! polynomial for fixed `k`, Theorem 5.16); the trivial single-node
//! decomposition bounds the search by `|edges(H)|`. Theorem 6.1(a) — every
//! width-`k` query decomposition is a width-`k` hypertree decomposition
//! with `χ(p) = var(λ(p))` — is implemented by
//! [`from_query_decomposition`].

use crate::hypertree::HypertreeDecomposition;
use crate::kdecomp::{CandidateMode, Solver};
use crate::querydecomp::QueryDecomposition;
use hypergraph::{acyclic, Hypergraph, NodeId};
use std::ops::RangeInclusive;

/// The exact hypertree width of `h` (0 for edgeless hypergraphs).
pub fn hypertree_width(h: &Hypergraph) -> usize {
    hypertree_width_with(h, CandidateMode::Pruned)
}

/// [`hypertree_width`] with an explicit candidate mode.
pub fn hypertree_width_with(h: &Hypergraph, mode: CandidateMode) -> usize {
    deepen(h, mode).map_or(0, |(k, _)| k)
}

/// The number of non-nullary edges of `h` — the width of the trivial
/// single-node decomposition, hence the upper end of every deepening
/// window. Factored out so deepening, the solvers, and callers share one
/// definition of the trivial bound.
pub fn nonempty_edge_count(h: &Hypergraph) -> usize {
    h.edges()
        .filter(|&e| !h.edge_vertices(e).is_empty())
        .count()
}

/// A cheap lower bound on `hw(h)`: `0` when there is nothing to cover,
/// `1` for acyclic hypergraphs, else `2` (Theorem 4.5: `hw ≤ 1` iff
/// acyclic). Used by the upper-bound-seeded search to stop deepening — and
/// to skip it entirely when a heuristic witness already meets the bound.
pub fn hypertree_width_lower_bound(h: &Hypergraph) -> usize {
    if nonempty_edge_count(h) == 0 {
        0
    } else if acyclic::is_acyclic(h) {
        1
    } else {
        2
    }
}

/// An optimal (minimum-width, normal-form) hypertree decomposition of `h`.
pub fn optimal_decomposition(h: &Hypergraph) -> HypertreeDecomposition {
    optimal_decomposition_with(h, CandidateMode::Pruned)
}

/// [`optimal_decomposition`] with an explicit candidate mode.
pub fn optimal_decomposition_with(h: &Hypergraph, mode: CandidateMode) -> HypertreeDecomposition {
    match deepen(h, mode) {
        // Warm start: the solver that proved hw ≤ k keeps its memo, so
        // extraction is a read-back, not a second search.
        Some((_, mut solver)) => solver
            .decompose()
            .expect("k = hw(h) must admit a decomposition"),
        None => Solver::new(h, 1, mode)
            .decompose()
            .expect("edgeless hypergraphs have the trivial decomposition"),
    }
}

/// `hw(h)` if it is at most `max_k`, else `None` — iterative deepening
/// over the window `1..=min(max_k, m)` only, so a caller holding an upper
/// bound (e.g. a heuristic GHD) never pays for levels above it.
pub fn hypertree_width_bounded(h: &Hypergraph, mode: CandidateMode, max_k: usize) -> Option<usize> {
    if nonempty_edge_count(h) == 0 {
        return Some(0);
    }
    deepen_in(h, mode, 1..=max_k).map(|(k, _)| k)
}

/// Outcome of a budgeted width search ([`hypertree_width_budgeted`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetedWidth {
    /// The search completed: `hw(h)` is exactly this value.
    Exact(usize),
    /// Every level of the window was decided negative: `hw(h) > max_k`.
    AboveWindow,
    /// The step budget ran out while deciding level `k` — `hw(h)` is
    /// unknown beyond `hw(h) ≥ k` (all lower levels were decided negative).
    Exhausted {
        /// The level at which the budget ran out.
        at_k: usize,
        /// Candidate steps spent on that level before giving up.
        steps_used: u64,
    },
}

/// Iterative deepening over `lo..=min(max_k, m)` where every level gets at
/// most `steps_per_level` candidate examinations. This is the bounded
/// exact search the heuristic subsystem leans on: on instances the exact
/// engine cannot finish, it fails *fast and deterministically* instead of
/// hanging, and the caller falls back to the heuristic decomposition.
pub fn hypertree_width_budgeted(
    h: &Hypergraph,
    mode: CandidateMode,
    window: RangeInclusive<usize>,
    steps_per_level: u64,
) -> BudgetedWidth {
    hypertree_width_deadlined(h, mode, window, steps_per_level, None)
}

/// [`hypertree_width_budgeted`] with an additional wall-clock deadline
/// shared by *all* levels: when it passes mid-search, the current level
/// reports [`BudgetedWidth::Exhausted`] exactly as a spent step budget
/// would. This is the deadline-aware form the resource-governance layer
/// uses — a `QueryBudget` deadline (or a share of it) caps the exact
/// search without changing its step semantics.
pub fn hypertree_width_deadlined(
    h: &Hypergraph,
    mode: CandidateMode,
    window: RangeInclusive<usize>,
    steps_per_level: u64,
    deadline: Option<std::time::Instant>,
) -> BudgetedWidth {
    let m = nonempty_edge_count(h);
    if m == 0 {
        return BudgetedWidth::Exact(0);
    }
    let lo = (*window.start()).max(1);
    let hi = (*window.end()).min(m);
    for k in lo..=hi {
        let mut solver = Solver::with_budget(h, k, mode, steps_per_level);
        solver.set_deadline(deadline);
        match solver.decide_bounded() {
            Some(true) => return BudgetedWidth::Exact(k),
            Some(false) => continue,
            None => {
                return BudgetedWidth::Exhausted {
                    at_k: k,
                    steps_used: solver.steps_used(),
                }
            }
        }
    }
    BudgetedWidth::AboveWindow
}

/// Optimal decomposition seeded with a known-valid witness: `seed` must be
/// a valid *hypertree* decomposition of `h` (condition 4 included), so
/// `hw(h) ≤ seed.width()` and deepening only needs the window
/// `lb..=seed.width()-1`. Early-exits without any search when the seed
/// width already meets the [`hypertree_width_lower_bound`]; when the
/// window comes up empty the seed itself is optimal and is returned.
pub fn optimal_decomposition_seeded(
    h: &Hypergraph,
    mode: CandidateMode,
    seed: &HypertreeDecomposition,
) -> HypertreeDecomposition {
    assert_eq!(
        seed.validate(h),
        Ok(()),
        "the seed must be a valid hypertree decomposition (its width is the upper bound)"
    );
    let lb = hypertree_width_lower_bound(h);
    if seed.width() <= lb {
        return seed.clone();
    }
    match deepen_in(h, mode, lb.max(1)..=seed.width() - 1) {
        Some((_, mut solver)) => solver
            .decompose()
            .expect("a positive level admits a decomposition"),
        None => seed.clone(),
    }
}

/// Iterative deepening on `k` over the full window `1..=m` (each run is
/// polynomial for fixed `k`, Theorem 5.16; the trivial single-node
/// decomposition bounds the search by `m = |edges(H)|`). Returns `hw(h)`
/// together with the successful solver — its memo is warm, so the caller
/// can extract the witness without re-running `decide` from scratch.
/// `None` for edgeless hypergraphs.
fn deepen(h: &Hypergraph, mode: CandidateMode) -> Option<(usize, Solver<'_>)> {
    deepen_in(h, mode, 1..=nonempty_edge_count(h))
}

/// [`deepen`] over an explicit window `lo..=hi` (clamped to `1..=m`): the
/// first level in the window that decides positive wins. Callers with an
/// upper bound pass `lo..=bound-1`; callers with a lower bound start
/// there instead of at `1`.
fn deepen_in(
    h: &Hypergraph,
    mode: CandidateMode,
    window: RangeInclusive<usize>,
) -> Option<(usize, Solver<'_>)> {
    let lo = (*window.start()).max(1);
    let hi = (*window.end()).min(nonempty_edge_count(h));
    for k in lo..=hi {
        let mut solver = Solver::new(h, k, mode);
        if solver.decide() {
            return Some((k, solver));
        }
    }
    None
}

/// Theorem 6.1(a): reinterpret a (pure) query decomposition as a hypertree
/// decomposition of the same width by setting `χ(p) = var(λ(p))`.
pub fn from_query_decomposition(h: &Hypergraph, qd: &QueryDecomposition) -> HypertreeDecomposition {
    let tree = qd.tree().clone();
    let mut chi = Vec::with_capacity(tree.len());
    let mut lambda = Vec::with_capacity(tree.len());
    for n in tree.nodes() {
        let label = qd.label(n).clone();
        chi.push(h.vertices_of_edges(&label));
        lambda.push(label);
    }
    HypertreeDecomposition::new(tree, chi, lambda)
}

/// Check `hw(h) = expected` and return a validated witness of that width.
/// Test helper used across the workspace's experiment code.
pub fn assert_width(h: &Hypergraph, expected: usize) -> HypertreeDecomposition {
    let hw = hypertree_width(h);
    assert_eq!(hw, expected, "hypertree width mismatch");
    let hd = optimal_decomposition(h);
    assert_eq!(hd.validate(h), Ok(()));
    assert_eq!(hd.width(), expected);
    hd
}

/// `true` iff node `p` of `hd` is a leaf covering nothing new — used by
/// width statistics in the experiments harness.
pub fn is_redundant_leaf(hd: &HypertreeDecomposition, p: NodeId) -> bool {
    hd.tree().is_leaf(p)
        && hd
            .tree()
            .parent(p)
            .map(|parent| hd.chi(p).is_subset_of(hd.chi(parent)))
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::acyclic;

    #[test]
    fn widths_of_known_shapes() {
        let path = Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert_eq!(hypertree_width(&path), 1);
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(hypertree_width(&triangle), 2);
        let empty = Hypergraph::from_edge_lists(3, &[]);
        assert_eq!(hypertree_width(&empty), 0);
    }

    #[test]
    fn acyclic_iff_width_one_matches_gyo() {
        // Theorem 4.5 cross-checked against the independent GYO oracle.
        let shapes: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1], vec![1, 2]],
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4]],
            vec![vec![0, 1], vec![2]],
            vec![vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]],
        ];
        for edges in shapes {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap_or(0);
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            assert_eq!(
                acyclic::is_acyclic(&h),
                hypertree_width(&h) <= 1,
                "mismatch on {edges:?}"
            );
        }
    }

    #[test]
    fn optimal_decomposition_validates() {
        let h =
            Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 0]]);
        let hd = optimal_decomposition(&h);
        assert_eq!(hd.width(), 2);
        assert_eq!(hd.validate(&h), Ok(()));
    }

    #[test]
    fn modes_agree_on_width() {
        let h = Hypergraph::from_edge_lists(5, &[&[0, 1, 2], &[2, 3], &[3, 4], &[4, 0], &[1, 3]]);
        assert_eq!(
            hypertree_width_with(&h, CandidateMode::Full),
            hypertree_width_with(&h, CandidateMode::Pruned)
        );
    }

    #[test]
    fn lower_bound_brackets_the_width() {
        let empty = Hypergraph::from_edge_lists(3, &[]);
        assert_eq!(hypertree_width_lower_bound(&empty), 0);
        let path = Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert_eq!(hypertree_width_lower_bound(&path), 1);
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(hypertree_width_lower_bound(&triangle), 2);
        for h in [&empty, &path, &triangle] {
            assert!(hypertree_width_lower_bound(h) <= hypertree_width(h));
        }
        assert_eq!(nonempty_edge_count(&triangle), 3);
        assert_eq!(
            nonempty_edge_count(&Hypergraph::from_edge_lists(2, &[&[], &[0, 1]])),
            1
        );
    }

    #[test]
    fn bounded_width_respects_the_window() {
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(
            hypertree_width_bounded(&triangle, CandidateMode::Pruned, 1),
            None
        );
        assert_eq!(
            hypertree_width_bounded(&triangle, CandidateMode::Pruned, 2),
            Some(2)
        );
        let empty = Hypergraph::from_edge_lists(0, &[]);
        assert_eq!(
            hypertree_width_bounded(&empty, CandidateMode::Pruned, 1),
            Some(0)
        );
    }

    #[test]
    fn budgeted_width_reports_exhaustion_honestly() {
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(
            hypertree_width_budgeted(&triangle, CandidateMode::Pruned, 1..=3, 1_000_000),
            BudgetedWidth::Exact(2)
        );
        assert_eq!(
            hypertree_width_budgeted(&triangle, CandidateMode::Pruned, 1..=1, 1_000_000),
            BudgetedWidth::AboveWindow
        );
        match hypertree_width_budgeted(&triangle, CandidateMode::Pruned, 1..=3, 1) {
            BudgetedWidth::Exhausted { at_k, steps_used } => {
                assert_eq!(at_k, 1);
                assert!(steps_used >= 1);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn deadlined_width_trips_on_an_elapsed_deadline_only() {
        use std::time::{Duration, Instant};
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        match hypertree_width_deadlined(
            &triangle,
            CandidateMode::Pruned,
            1..=3,
            u64::MAX,
            Some(Instant::now()),
        ) {
            BudgetedWidth::Exhausted { at_k, .. } => assert_eq!(at_k, 1),
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
        assert_eq!(
            hypertree_width_deadlined(
                &triangle,
                CandidateMode::Pruned,
                1..=3,
                u64::MAX,
                Some(Instant::now() + Duration::from_secs(3600)),
            ),
            BudgetedWidth::Exact(2)
        );
    }

    #[test]
    fn seeded_search_improves_on_wide_seeds_and_keeps_tight_ones() {
        let h =
            Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 0]]);
        // The trivial width-6 seed is beaten down to the true optimum 2.
        let trivial = HypertreeDecomposition::trivial(&h);
        let hd = optimal_decomposition_seeded(&h, CandidateMode::Pruned, &trivial);
        assert_eq!(hd.width(), 2);
        assert_eq!(hd.validate(&h), Ok(()));
        // A width-2 seed on a cyclic instance meets the lower bound: the
        // seed itself comes back, with no deepening at all.
        let seeded_again = optimal_decomposition_seeded(&h, CandidateMode::Pruned, &hd);
        assert_eq!(seeded_again, hd);
        // Acyclic instance: lower bound 1 short-circuits a width-1 seed.
        let path = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2]]);
        let opt = optimal_decomposition(&path);
        assert_eq!(opt.width(), 1);
        let kept = optimal_decomposition_seeded(&path, CandidateMode::Pruned, &opt);
        assert_eq!(kept, opt);
    }
}
