//! Hypertree decompositions — the core of the reproduction of
//! *Gottlob, Leone, Scarcello: Hypertree Decompositions and Tractable
//! Queries* (PODS'99 / JCSS 2002).
//!
//! * [`HypertreeDecomposition`] — the `⟨T, χ, λ⟩` triple of Definition 4.1
//!   with an independent validator, width, the atom representation of
//!   Fig. 7, and completion (Lemma 4.4);
//! * [`normal_form`] — Definition 5.1 validation and the Theorem 5.4
//!   normalisation;
//! * [`kdecomp`] — the Fig. 10 algorithm, determinised and memoised
//!   (Theorems 5.14/5.16/5.18), with full and pruned candidate modes;
//! * [`datalog`] — the Appendix B bottom-up Datalog program, kept as an
//!   independent second decision procedure for cross-validation;
//! * [`parallel`] — scoped-thread evaluation of the independent component
//!   subproblems (the executable reading of "in LOGCFL, hence highly
//!   parallelizable");
//! * [`opt`] — exact `hw(H)` by iterative deepening, plus the
//!   Theorem 6.1(a) embedding of query decompositions;
//! * [`querydecomp`] — query decompositions (Definition 3.1), their
//!   validator, and the exact exponential `qw ≤ k` search whose cost is
//!   itself part of the paper's story (Theorem 3.4: NP-complete).
//!
//! # Example
//!
//! ```
//! use hypertree_core::{kdecomp, opt};
//! use hypergraph::Hypergraph;
//!
//! // Q1 from Example 1.1 (cyclic): hypertree width 2.
//! let mut b = Hypergraph::builder();
//! b.edge_by_names("enrolled", &["S", "C", "R"]);
//! b.edge_by_names("teaches", &["P", "C", "A"]);
//! b.edge_by_names("parent", &["P", "S"]);
//! let q1 = b.build();
//! assert_eq!(opt::hypertree_width(&q1), 2);
//! let hd = kdecomp::decompose(&q1, 2, kdecomp::CandidateMode::Pruned).unwrap();
//! assert_eq!(hd.validate(&q1), Ok(()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod budget;
pub mod cache;
pub mod datalog;
pub mod dot;
mod engine;
mod hypertree;
pub mod kdecomp;
pub mod lru;
pub mod normal_form;
pub mod opt;
pub mod parallel;
pub mod querydecomp;
pub mod subsets;
pub mod theorem45;

pub use budget::{QueryBudget, QueryError};
pub use cache::DecompCache;
pub use hypertree::{HdViolation, HypertreeDecomposition, ValidityMode};
pub use kdecomp::{CandidateMode, Solver};
pub use lru::Lru;
pub use querydecomp::{BudgetExceeded, QdViolation, QueryDecomposition};
