//! Normal-form hypertree decompositions (Definition 5.1, Theorem 5.4).
//!
//! A hypertree decomposition is in *normal form* if for every vertex `r`
//! and child `s`:
//!
//! 1. there is exactly one `[χ(r)]`-component `C_r` with
//!    `χ(T_s) = C_r ∪ (χ(s) ∩ χ(r))`;
//! 2. `χ(s) ∩ C_r ≠ ∅`;
//! 3. `var(λ(s)) ∩ χ(r) ⊆ χ(s)`.
//!
//! Theorem 5.4: every width-`k` decomposition can be rewritten into normal
//! form without increasing the width. [`normalize`] implements the proof's
//! transformation literally: children whose χ adds nothing are deleted and
//! their subtrees lifted (Fig. 9), subtrees straddling several
//! `[r]`-components are split into one copy per component, and condition 3
//! is restored by enlarging χ. Normal form is what makes decompositions
//! canonical enough for `k-decomp` to find (Lemma 5.9) and caps the tree at
//! `|var(Q)|` nodes (Lemma 5.7).

use crate::hypertree::HypertreeDecomposition;
use hypergraph::{components, EdgeSet, Hypergraph, Ix, NodeId, RootedTree, VertexSet};

/// A violation of Definition 5.1 at the child node carried by the variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfViolation {
    /// Condition 1 fails at this child: `χ(T_s)` is not one
    /// `[r]`-component plus shared χ.
    NotOneComponent(NodeId),
    /// Condition 2 fails: the child's χ misses its component entirely.
    NoNewVariables(NodeId),
    /// Condition 3 fails: λ re-imports parent-χ variables the child drops.
    LambdaEscapesChi(NodeId),
}

/// All Definition 5.1 violations of `hd` (empty = normal form).
pub fn nf_violations(h: &Hypergraph, hd: &HypertreeDecomposition) -> Vec<NfViolation> {
    let mut out = Vec::new();
    let tree = hd.tree();
    for r in tree.nodes() {
        let chi_r = hd.chi(r);
        // archlint::allow(scoped-component-sweeps, reason = "normal-form validation sweeps the full graph once per check, not per recursion step")
        let comps = components(h, chi_r);
        for &s in tree.children(r) {
            let chi_s = hd.chi(s);
            let chi_ts = hd.chi_subtree(s);
            let new_vars = chi_ts.difference(chi_r);
            let shared_ok = chi_ts.intersection(chi_r).is_subset_of(chi_s);
            let unique_component = comps.iter().find(|c| c.vertices == new_vars);
            match unique_component {
                Some(c) if shared_ok => {
                    if !chi_s.intersects(&c.vertices) {
                        out.push(NfViolation::NoNewVariables(s));
                    }
                }
                _ => out.push(NfViolation::NotOneComponent(s)),
            }
            let lambda_vars = h.vertices_of_edges(hd.lambda(s));
            if !lambda_vars.intersection(chi_r).is_subset_of(chi_s) {
                out.push(NfViolation::LambdaEscapesChi(s));
            }
        }
    }
    out
}

/// `true` iff `hd` satisfies Definition 5.1.
pub fn is_normal_form(h: &Hypergraph, hd: &HypertreeDecomposition) -> bool {
    nf_violations(h, hd).is_empty()
}

/// `treecomp(s)` for a normal-form decomposition: `var(Q)` at the root,
/// otherwise the unique `[parent]`-component the subtree handles.
pub fn treecomp(h: &Hypergraph, hd: &HypertreeDecomposition, s: NodeId) -> VertexSet {
    match hd.tree().parent(s) {
        None => h.all_vertices(),
        Some(r) => hd.chi_subtree(s).difference(hd.chi(r)),
    }
}

/// Rewrite `hd` (which must be a valid decomposition of `h`) into normal
/// form without increasing its width (Theorem 5.4).
pub fn normalize(h: &Hypergraph, hd: &HypertreeDecomposition) -> HypertreeDecomposition {
    debug_assert_eq!(hd.validate(h), Ok(()), "normalize() needs a valid input");
    let mut arena = Arena::from_hd(hd);
    process(h, &mut arena, 0);
    let out = arena.into_hd();
    debug_assert_eq!(out.validate(h), Ok(()));
    debug_assert!(is_normal_form(h, &out));
    debug_assert!(out.width() <= hd.width().max(1));
    out
}

/// Mutable working representation during normalisation.
struct Arena {
    chi: Vec<VertexSet>,
    lambda: Vec<EdgeSet>,
    children: Vec<Vec<usize>>,
}

impl Arena {
    fn from_hd(hd: &HypertreeDecomposition) -> Self {
        let n = hd.len();
        let tree = hd.tree();
        Arena {
            chi: (0..n).map(|i| hd.chi(NodeId::new(i)).clone()).collect(),
            lambda: (0..n).map(|i| hd.lambda(NodeId::new(i)).clone()).collect(),
            children: (0..n)
                .map(|i| {
                    tree.children(NodeId::new(i))
                        .iter()
                        .map(|c| c.index())
                        .collect()
                })
                .collect(),
        }
    }

    fn add_node(&mut self, chi: VertexSet, lambda: EdgeSet) -> usize {
        self.chi.push(chi);
        self.lambda.push(lambda);
        self.children.push(Vec::new());
        self.chi.len() - 1
    }

    fn subtree(&self, s: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend(self.children[v].iter().copied());
        }
        out
    }

    fn chi_subtree(&self, s: usize) -> VertexSet {
        let mut out = self.chi[s].clone();
        for v in self.subtree(s) {
            out.union_with(&self.chi[v]);
        }
        out
    }

    /// Rebuild an immutable decomposition from the (possibly sparse) arena,
    /// keeping only nodes reachable from the root.
    fn into_hd(self) -> HypertreeDecomposition {
        let mut tree = RootedTree::new();
        let mut chi = vec![self.chi[0].clone()];
        let mut lambda = vec![self.lambda[0].clone()];
        let mut stack = vec![(tree.root(), 0usize)];
        while let Some((node, old)) = stack.pop() {
            for &c in &self.children[old] {
                let child = tree.add_child(node);
                chi.push(self.chi[c].clone());
                lambda.push(self.lambda[c].clone());
                stack.push((child, c));
            }
        }
        HypertreeDecomposition::new(tree, chi, lambda)
    }
}

/// Normalise the children of `r`, then recurse (the Theorem 5.4 sweep).
fn process(h: &Hypergraph, arena: &mut Arena, r: usize) {
    loop {
        let mut changed = false;
        let snapshot = arena.children[r].clone();
        for s in snapshot {
            if !arena.children[r].contains(&s) {
                continue; // removed by an earlier rewrite in this pass
            }
            let chi_r = arena.chi[r].clone();
            let chi_s = arena.chi[s].clone();
            let chi_ts = arena.chi_subtree(s);
            let new_vars = chi_ts.difference(&chi_r);

            if new_vars.is_empty() {
                // Fig. 9: χ(T_s) ⊆ χ(r) — but the subtree may still carry
                // λ-atoms needed for coverage; lifting s's children to r and
                // dropping s is safe because every χ is within χ(r)...
                // coverage of edges happens through χ, which survives in the
                // lifted children. Only s itself is deleted.
                lift(arena, r, s);
                changed = true;
                continue;
            }

            // archlint::allow(scoped-component-sweeps, reason = "normal-form construction seeds from one full-graph sweep per level")
            let comps = components(h, &chi_r);
            let meets: Vec<usize> = comps
                .iter()
                .enumerate()
                .filter(|(_, c)| c.vertices.intersects(&new_vars))
                .map(|(i, _)| i)
                .collect();
            let cond1 = meets.len() == 1
                && comps[meets[0]].vertices == new_vars
                && chi_ts.intersection(&chi_r).is_subset_of(&chi_s);

            if !cond1 {
                // Split T_s into one copy per [r]-component it straddles.
                let subtree = arena.subtree(s);
                arena.children[r].retain(|&c| c != s);
                for &ci in &meets {
                    let comp = &comps[ci].vertices;
                    copy_component_subtree(arena, h, r, s, &subtree, comp, &chi_r);
                }
                changed = true;
                continue;
            }

            // Condition 2: the child itself must meet its component.
            if !chi_s.intersects(&new_vars) {
                lift(arena, r, s);
                changed = true;
                continue;
            }

            // Condition 3: pull λ-variables shared with the parent into χ.
            let lambda_vars = h.vertices_of_edges(&arena.lambda[s]);
            let fix = lambda_vars.intersection(&chi_r);
            if !fix.is_subset_of(&arena.chi[s]) {
                arena.chi[s].union_with(&fix);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let children = arena.children[r].clone();
    for s in children {
        process(h, arena, s);
    }
}

/// Delete `s` (a child of `r`) and attach its children to `r`.
fn lift(arena: &mut Arena, r: usize, s: usize) {
    let grandchildren = std::mem::take(&mut arena.children[s]);
    let pos = arena.children[r]
        .iter()
        .position(|&c| c == s)
        .expect("s is a child of r");
    arena.children[r].remove(pos);
    arena.children[r].extend(grandchildren);
}

/// The Theorem 5.4 splitting step: copy the nodes of `subtree` whose χ
/// meets `comp` (they induce a connected subtree by Lemma 5.3), relabel
/// `χ' = χ ∩ (comp ∪ χ(r))`, and attach the copy's root under `r`.
fn copy_component_subtree(
    arena: &mut Arena,
    _h: &Hypergraph,
    r: usize,
    s: usize,
    subtree: &[usize],
    comp: &VertexSet,
    chi_r: &VertexSet,
) {
    let members: Vec<usize> = subtree
        .iter()
        .copied()
        .filter(|&v| arena.chi[v].intersects(comp))
        .collect();
    debug_assert!(!members.is_empty());

    // parent map within the original subtree
    let mut parent_of = vec![usize::MAX; arena.chi.len()];
    for &v in subtree {
        for &c in &arena.children[v] {
            parent_of[c] = v;
        }
    }

    let mut allowed = comp.clone();
    allowed.union_with(chi_r);

    // Create the copies.
    let mut copy_of: rustc_hash::FxHashMap<usize, usize> = rustc_hash::FxHashMap::default();
    for &v in &members {
        let chi = arena.chi[v].intersection(&allowed);
        let lambda = arena.lambda[v].clone();
        let id = arena.add_node(chi, lambda);
        copy_of.insert(v, id);
    }
    // Wire the copies together; the member set is connected (Lemma 5.3),
    // so a member's parent is in the set unless the member is the copy root.
    let mut root_copy = None;
    for &v in &members {
        let p = if v == s { usize::MAX } else { parent_of[v] };
        if p != usize::MAX && copy_of.contains_key(&p) {
            let pc = copy_of[&p];
            let vc = copy_of[&v];
            arena.children[pc].push(vc);
        } else {
            debug_assert!(root_copy.is_none(), "component subtree has one root");
            root_copy = Some(copy_of[&v]);
        }
    }
    arena.children[r].push(root_copy.expect("non-empty member set"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdecomp::{decompose, CandidateMode};

    fn q1() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("enrolled", &["S", "C", "R"]);
        b.edge_by_names("teaches", &["P", "C", "A"]);
        b.edge_by_names("parent", &["P", "S"]);
        b.build()
    }

    fn q5() -> Hypergraph {
        let mut b = Hypergraph::builder();
        b.edge_by_names("a", &["S", "X", "Xp", "C", "F"]);
        b.edge_by_names("b", &["S", "Y", "Yp", "Cp", "Fp"]);
        b.edge_by_names("c", &["C", "Cp", "Z"]);
        b.edge_by_names("d", &["X", "Z"]);
        b.edge_by_names("e", &["Y", "Z"]);
        b.edge_by_names("f", &["F", "Fp", "Zp"]);
        b.edge_by_names("g", &["Xp", "Zp"]);
        b.edge_by_names("h", &["Yp", "Zp"]);
        b.edge_by_names("j", &["J", "X", "Y", "Xp", "Yp"]);
        b.build()
    }

    fn vset(h: &Hypergraph, names: &[&str]) -> VertexSet {
        let mut s = h.empty_vertex_set();
        for n in names {
            s.insert(h.vertex_by_name(n).unwrap());
        }
        s
    }

    fn eset(h: &Hypergraph, names: &[&str]) -> EdgeSet {
        let mut s = h.empty_edge_set();
        for n in names {
            s.insert(h.edge_by_name(n).unwrap());
        }
        s
    }

    #[test]
    fn fig6a_is_normal_form() {
        let h = q1();
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        let hd = HypertreeDecomposition::new(
            tree,
            vec![vset(&h, &["P", "S", "C"]), vset(&h, &["S", "C", "R"])],
            vec![eset(&h, &["teaches", "parent"]), eset(&h, &["enrolled"])],
        );
        assert!(is_normal_form(&h, &hd));
        // treecomp of the child is the [root]-component {R}.
        assert_eq!(treecomp(&h, &hd, NodeId(1)), vset(&h, &["R"]));
        assert_eq!(treecomp(&h, &hd, NodeId(0)), h.all_vertices());
    }

    #[test]
    fn kdecomp_witnesses_are_normal_form() {
        // Lemma 5.13: witness trees of accepting computations are NF.
        for h in [q1(), q5()] {
            let hd = decompose(&h, 2, CandidateMode::Full).unwrap();
            assert!(
                is_normal_form(&h, &hd),
                "violations: {:?}",
                nf_violations(&h, &hd)
            );
        }
    }

    #[test]
    fn redundant_chain_is_flattened() {
        // Root and an identical child: the child violates condition 2
        // (adds no variables) and must be lifted away.
        let h = q1();
        let mut tree = RootedTree::new();
        let dup = tree.add_child(tree.root());
        tree.add_child(dup);
        let all3 = eset(&h, &["enrolled", "teaches", "parent"]);
        let allv = vset(&h, &["S", "C", "R", "P", "A"]);
        let hd = HypertreeDecomposition::new(
            tree,
            vec![allv.clone(), allv.clone(), allv.clone()],
            vec![all3.clone(), all3.clone(), all3],
        );
        assert!(!is_normal_form(&h, &hd));
        let nf = normalize(&h, &hd);
        assert_eq!(nf.len(), 1);
        assert!(is_normal_form(&h, &nf));
        assert_eq!(nf.width(), 3);
    }

    #[test]
    fn straddling_subtree_is_split() {
        // Fragment of Q5 (without d,e,g,h) with root {a,b}: the
        // [root]-components are {Z}, {Z'}, {J}. A single child covering
        // c(C,C',Z), f(F,F',Z') and j(J,…) straddles all three components
        // and must be split into three subtrees.
        let mut b = Hypergraph::builder();
        b.edge_by_names("a", &["S", "X", "Xp", "C", "F"]);
        b.edge_by_names("b", &["S", "Y", "Yp", "Cp", "Fp"]);
        b.edge_by_names("c", &["C", "Cp", "Z"]);
        b.edge_by_names("f", &["F", "Fp", "Zp"]);
        b.edge_by_names("j", &["J", "X", "Y", "Xp", "Yp"]);
        let frag = b.build();
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        let hd = HypertreeDecomposition::new(
            tree,
            vec![
                vset(&frag, &["S", "X", "Xp", "C", "F", "Y", "Yp", "Cp", "Fp"]),
                vset(
                    &frag,
                    &["C", "Cp", "Z", "F", "Fp", "Zp", "J", "X", "Y", "Xp", "Yp"],
                ),
            ],
            vec![eset(&frag, &["a", "b"]), eset(&frag, &["c", "f", "j"])],
        );
        assert_eq!(hd.validate(&frag), Ok(()));
        assert!(!is_normal_form(&frag, &hd));
        let nf = normalize(&frag, &hd);
        assert!(is_normal_form(&frag, &nf));
        assert!(nf.width() <= hd.width());
        // The root now has one child per straddled component: {Z}, {Z'}, {J}.
        assert_eq!(nf.tree().children(NodeId(0)).len(), 3);
    }

    #[test]
    fn condition3_fix_enlarges_chi() {
        let h = q1();
        let mut tree = RootedTree::new();
        tree.add_child(tree.root());
        // The child's λ carries `parent`, whose variable P sits in the
        // parent's χ but not in the child's χ: valid per Definition 4.1
        // (P's occurrences stay connected; condition 4 holds because P is
        // not in χ(T_child)), but it violates NF condition 3.
        let hd = HypertreeDecomposition::new(
            tree,
            vec![vset(&h, &["P", "S", "C", "A"]), vset(&h, &["S", "C", "R"])],
            vec![
                eset(&h, &["teaches", "parent"]),
                eset(&h, &["enrolled", "parent"]),
            ],
        );
        assert_eq!(hd.validate(&h), Ok(()));
        assert!(nf_violations(&h, &hd)
            .iter()
            .any(|v| matches!(v, NfViolation::LambdaEscapesChi(_))));
        let nf = normalize(&h, &hd);
        assert!(is_normal_form(&h, &nf));
        // P was pulled into the child's χ.
        let child = nf.tree().children(NodeId(0))[0];
        assert!(nf.chi(child).contains(h.vertex_by_name("P").unwrap()));
    }

    #[test]
    fn normalize_bounds_node_count() {
        // Lemma 5.7 via Theorem 5.4: NF decompositions have ≤ |var| nodes.
        let h = q5();
        let hd = HypertreeDecomposition::trivial(&h).complete(&h);
        let nf = normalize(&h, &hd);
        assert!(is_normal_form(&h, &nf));
        assert!(nf.len() <= h.num_vertices());
    }
}
