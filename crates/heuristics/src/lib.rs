//! Heuristic generalized hypertree decompositions.
//!
//! The exact `k-decomp` engine ([`hypertree_core::kdecomp`]) is complete
//! but exponential in `k` — beyond a few dozen edges it is out of reach.
//! This crate is the other half of the bargain, in the spirit of
//! Fischl–Gottlob–Pichler's GHD work and Greco–Scarcello's greedy
//! strategies: *cheap* decompositions from vertex elimination orderings
//! that still bound evaluation cost, because a width-`w` GHD feeds the
//! same Lemma 4.6 pipeline with node relations of size `O(r^w)`.
//!
//! * [`order`] — min-degree, min-fill, and cover-greedy elimination
//!   orderings (the last scores by greedy *edge-cover* size, the hypertree
//!   objective, reusing the exact engine's candidate-ranking idea);
//! * [`bucket`] — bucket elimination: order → GHD
//!   ([`HypertreeDecomposition`] validated in
//!   [`ValidityMode::Generalized`]);
//! * [`improve`] — local improvement by re-eliminating the widest bag's
//!   neighbourhood under alternative orderings;
//! * [`decompose_auto`] — the full funnel: heuristic upper bound, then
//!   *bounded* exact search seeded with it (early exit on a matching
//!   lower bound), falling back to the heuristic witness when the budget
//!   runs out. The first path in this workspace from "hypergraph too big
//!   for exact search" to "validated decomposition".

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod bucket;
pub mod improve;
pub mod order;

pub use bucket::decompose_with_order;
pub use improve::improve_order;

use hypergraph::{Hypergraph, VertexId};
use hypertree_core::kdecomp::{CandidateMode, Solver};
use hypertree_core::{opt, HypertreeDecomposition, QueryBudget, QueryError, ValidityMode};
use std::time::Instant;

/// The ordering heuristics this crate ships.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OrderingHeuristic {
    /// Fewest live neighbours first.
    MinDegree,
    /// Fewest fill edges first.
    MinFill,
    /// Cheapest greedy bag cover first (the hypertree-aware ordering).
    CoverGreedy,
}

/// All ordering heuristics, in comparison order.
pub const ALL_ORDERINGS: [OrderingHeuristic; 3] = [
    OrderingHeuristic::MinDegree,
    OrderingHeuristic::MinFill,
    OrderingHeuristic::CoverGreedy,
];

impl OrderingHeuristic {
    /// Stable lowercase name (bench entries, logs).
    pub fn name(self) -> &'static str {
        match self {
            OrderingHeuristic::MinDegree => "min-degree",
            OrderingHeuristic::MinFill => "min-fill",
            OrderingHeuristic::CoverGreedy => "cover-greedy",
        }
    }
}

/// The elimination order the given heuristic produces for `h` (over the
/// edge-incident vertices only).
pub fn elimination_order(h: &Hypergraph, heuristic: OrderingHeuristic) -> Vec<VertexId> {
    match heuristic {
        OrderingHeuristic::MinDegree => order::min_degree_order(h),
        OrderingHeuristic::MinFill => order::min_fill_order(h),
        OrderingHeuristic::CoverGreedy => order::cover_greedy_order(h),
    }
}

/// The GHD the given ordering heuristic produces for `h` (no improvement
/// pass). Always validates in [`ValidityMode::Generalized`].
pub fn decompose_with(h: &Hypergraph, heuristic: OrderingHeuristic) -> HypertreeDecomposition {
    decompose_with_order(h, &elimination_order(h, heuristic))
}

/// The best heuristic GHD for `h`: every ordering of [`ALL_ORDERINGS`] is
/// assembled and locally improved, and the narrowest result wins (ties:
/// earlier ordering).
pub fn best_decomposition(h: &Hypergraph) -> HypertreeDecomposition {
    ALL_ORDERINGS
        .iter()
        .map(|&heur| {
            let order = elimination_order(h, heur);
            improve_order(h, &order, improve::DEFAULT_ROUNDS).0
        })
        .min_by_key(HypertreeDecomposition::width)
        .expect("ALL_ORDERINGS is non-empty")
}

/// Upper bound on the generalized hypertree width of `h`, from
/// [`best_decomposition`].
pub fn ghw_upper_bound(h: &Hypergraph) -> usize {
    best_decomposition(h).width()
}

/// How [`decompose_auto`] arrived at its decomposition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Found by the bounded exact engine: width is exactly `hw(h)`.
    Exact,
    /// The heuristic witness, *proven* width-optimal — it met the lower
    /// bound, or the exact engine refuted every smaller width within
    /// budget (only claimed when the witness is a full hypertree
    /// decomposition, so its width really bounds `hw`).
    HeuristicOptimal,
    /// The heuristic witness; the exact engine ran out of budget before
    /// confirming or improving it. Valid for evaluation, width not proven
    /// minimal.
    Heuristic,
}

/// A decomposition plus the strength of the claim behind it.
#[derive(Clone, Debug)]
pub struct AutoDecomposition {
    /// The decomposition — always GHD-valid; a full hypertree
    /// decomposition whenever `provenance` is [`Provenance::Exact`].
    pub hd: HypertreeDecomposition,
    /// How it was obtained.
    pub provenance: Provenance,
}

/// Decompose `h` whatever its size: heuristic GHD first, then a bounded
/// exact search seeded with the heuristic width — deepening only over
/// `lower_bound..=width(-1)` and spending at most `exact_steps` candidate
/// examinations per level. Small instances come back exact; large ones
/// fall back to the validated heuristic witness instead of hanging.
pub fn decompose_auto(h: &Hypergraph, exact_steps: u64) -> AutoDecomposition {
    decompose_auto_governed(h, exact_steps, None, &QueryBudget::unlimited())
        .expect("an unlimited budget never trips")
}

/// [`decompose_auto`] under a [`QueryBudget`] — the planning tier of the
/// degradation ladder.
///
/// The heuristic pass runs first and is polled between orderings: a
/// budget that trips before *any* witness exists unwinds with the check's
/// error (there is no plan to degrade to). Once the heuristic witness is
/// in hand, the bounded exact search runs under the step budget *and* a
/// wall-clock deadline — the earlier of `exact_deadline` (the search's
/// *share* of the request deadline, chosen by the caller) and the
/// budget's own deadline. An exact search that trips either bound falls
/// back to the validated heuristic witness ([`Provenance::Heuristic`])
/// instead of erroring; only cancellation aborts outright at that point.
pub fn decompose_auto_governed(
    h: &Hypergraph,
    exact_steps: u64,
    exact_deadline: Option<Instant>,
    budget: &QueryBudget,
) -> Result<AutoDecomposition, QueryError> {
    const PHASE: &str = "plan";
    let mut witnesses = Vec::with_capacity(ALL_ORDERINGS.len());
    for &heur in &ALL_ORDERINGS {
        budget.check(PHASE)?;
        let order = elimination_order(h, heur);
        witnesses.push(improve_order(h, &order, improve::DEFAULT_ROUNDS).0);
    }
    let ghd = witnesses
        .into_iter()
        .min_by_key(HypertreeDecomposition::width)
        .expect("ALL_ORDERINGS is non-empty");
    debug_assert!(ghd.violations_with(h, ValidityMode::Generalized).is_empty());
    budget.check(PHASE)?;
    let lb = opt::hypertree_width_lower_bound(h);
    if ghd.width() <= lb {
        // Nothing can be narrower; the witness is optimal as it stands.
        return Ok(AutoDecomposition {
            hd: ghd,
            provenance: Provenance::HeuristicOptimal,
        });
    }
    // When the witness happens to satisfy the descendant condition too, it
    // is a full HD and `hw(h) ≤ width`: the last level the exact engine
    // needs is width-1. Otherwise only `ghw ≤ width` is known and level
    // `width` itself is still worth deciding.
    let is_full_hd = ghd.validate(h).is_ok();
    let hi = if is_full_hd {
        ghd.width() - 1
    } else {
        ghd.width()
    };
    let solver_deadline = match (exact_deadline, budget.deadline()) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    for k in lb.max(1)..=hi {
        match budget.check(PHASE) {
            Ok(()) => {}
            Err(QueryError::Cancelled) => return Err(QueryError::Cancelled),
            // A witness exists: a passed deadline degrades to it rather
            // than failing the request during planning.
            Err(_) => {
                return Ok(AutoDecomposition {
                    hd: ghd,
                    provenance: Provenance::Heuristic,
                })
            }
        }
        let mut solver = Solver::with_budget(h, k, CandidateMode::Pruned, exact_steps);
        solver.set_deadline(solver_deadline);
        match solver.decide_bounded() {
            Some(true) => {
                let hd = solver
                    .decompose()
                    .expect("a positive level admits a decomposition");
                return Ok(AutoDecomposition {
                    hd,
                    provenance: Provenance::Exact,
                });
            }
            Some(false) => continue,
            None => {
                return Ok(AutoDecomposition {
                    hd: ghd,
                    provenance: Provenance::Heuristic,
                })
            }
        }
    }
    // Every smaller width refuted within budget.
    Ok(AutoDecomposition {
        hd: ghd,
        provenance: if is_full_hd {
            Provenance::HeuristicOptimal
        } else {
            Provenance::Heuristic
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_decomposition_is_no_wider_than_any_single_ordering() {
        let h = Hypergraph::from_edge_lists(
            7,
            &[
                &[0, 1, 2],
                &[2, 3],
                &[3, 4],
                &[4, 5],
                &[5, 6],
                &[6, 0],
                &[1, 4],
            ],
        );
        let best = best_decomposition(&h);
        assert_eq!(best.validate_ghd(&h), Ok(()));
        for heur in ALL_ORDERINGS {
            assert!(best.width() <= decompose_with(&h, heur).width());
        }
    }

    #[test]
    fn auto_is_exact_on_small_instances() {
        let triangle = Hypergraph::from_edge_lists(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        let auto = decompose_auto(&triangle, 1_000_000);
        assert_eq!(auto.hd.width(), 2);
        assert!(matches!(
            auto.provenance,
            Provenance::Exact | Provenance::HeuristicOptimal
        ));
        assert_eq!(auto.hd.validate_ghd(&triangle), Ok(()));

        let path = Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let auto = decompose_auto(&path, 1_000_000);
        assert_eq!(auto.hd.width(), 1, "acyclic instances reach width 1");

        let empty = Hypergraph::from_edge_lists(2, &[]);
        let auto = decompose_auto(&empty, 1_000);
        assert_eq!(auto.hd.width(), 0);
        assert_eq!(auto.provenance, Provenance::HeuristicOptimal);
    }

    #[test]
    fn auto_falls_back_to_the_heuristic_under_a_starved_budget() {
        // 4x4 grid: cyclic, hw 3-ish; one candidate step decides nothing.
        let q = workloads::families::grid(4, 4);
        let h = q.hypergraph();
        let auto = decompose_auto(&h, 1);
        assert_eq!(auto.provenance, Provenance::Heuristic);
        assert_eq!(auto.hd.validate_ghd(&h), Ok(()));
        assert!(auto.hd.width() >= 2);
    }

    #[test]
    fn governed_planning_degrades_and_cancels() {
        let q = workloads::families::grid(4, 4);
        let h = q.hypergraph();
        // Unlimited budget: identical to the ungoverned funnel.
        let plain = decompose_auto(&h, 1);
        let governed = decompose_auto_governed(&h, 1, None, &QueryBudget::unlimited()).unwrap();
        assert_eq!(governed.provenance, plain.provenance);
        assert_eq!(governed.hd.width(), plain.hd.width());
        // An already-elapsed exact-search deadline: the heuristic witness
        // still comes back, marked as such.
        let auto = decompose_auto_governed(
            &h,
            u64::MAX,
            Some(Instant::now()),
            &QueryBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(auto.provenance, Provenance::Heuristic);
        assert_eq!(auto.hd.validate_ghd(&h), Ok(()));
        // A budget that trips before any witness exists is a hard error.
        let b = QueryBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            decompose_auto_governed(&h, 1, None, &b).unwrap_err(),
            QueryError::DeadlineExceeded { phase: "plan" }
        );
        // Cancellation aborts outright, witness or not.
        let b = QueryBudget::unlimited();
        b.cancel();
        assert_eq!(
            decompose_auto_governed(&h, 1, None, &b).unwrap_err(),
            QueryError::Cancelled
        );
    }

    #[test]
    fn ordering_names_are_stable() {
        assert_eq!(
            ALL_ORDERINGS.map(OrderingHeuristic::name),
            ["min-degree", "min-fill", "cover-greedy"]
        );
    }
}
