//! Bucket elimination: from a vertex elimination order to a generalized
//! hypertree decomposition.
//!
//! Replaying an order through the fill graph yields the classic
//! elimination tree decomposition: the *bag* of `v` is its closed live
//! neighbourhood at elimination time, and `bag(v)` hangs under the bag of
//! the earliest-eliminated other member of `bag(v)`. Every hyperedge is a
//! clique of the primal graph, so it lands inside the bag of its
//! first-eliminated member (condition 1); the running-intersection
//! property of elimination orders gives connectedness (condition 2); and
//! labelling each bag with a greedy edge cover gives `χ(p) ⊆ var(λ(p))`
//! (condition 3). The result is a GHD — the descendant condition is *not*
//! guaranteed, which is exactly why [`hypertree_core::ValidityMode`] grew
//! a `Generalized` mode.
//!
//! Bags that are subsets of their (effective) parent's bag are merged away
//! before labelling: the standard width-preserving simplification, which
//! keeps node counts near the number of "interesting" vertices instead of
//! `|var(H)|`.

use crate::order::{greedy_cover, FillGraph};
use hypergraph::{Hypergraph, Ix, RootedTree, VertexId, VertexSet};
use hypertree_core::HypertreeDecomposition;

/// The width-0 single-node decomposition for hypergraphs with no nonempty
/// edge (nullary edges are covered by any node).
fn empty_decomposition(h: &Hypergraph) -> HypertreeDecomposition {
    HypertreeDecomposition::new(
        RootedTree::new(),
        vec![h.empty_vertex_set()],
        vec![h.empty_edge_set()],
    )
}

/// Assemble the GHD induced by eliminating `order` (which must enumerate
/// exactly the edge-incident vertices of `h`, each once — what the
/// ordering functions in [`crate::order`] produce). The result validates
/// in [`hypertree_core::ValidityMode::Generalized`]; its width is the
/// order's cover-width.
pub fn decompose_with_order(h: &Hypergraph, order: &[VertexId]) -> HypertreeDecomposition {
    let n = h.num_vertices();
    if order.is_empty() {
        return empty_decomposition(h);
    }
    let mut fill = FillGraph::new(h);
    debug_assert_eq!(
        &VertexSet::from_iter(n, order.iter().copied()),
        fill.alive(),
        "order must enumerate exactly the edge-incident vertices"
    );

    // Pass 1: bags and parent links (by position in the order).
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let mut bags: Vec<VertexSet> = Vec::with_capacity(order.len());
    let mut parent: Vec<Option<usize>> = Vec::with_capacity(order.len());
    for &v in order {
        let bag = fill.bag_of(v);
        parent.push(bag.iter().filter(|&u| u != v).map(|u| pos[u.index()]).min());
        bags.push(bag);
        fill.eliminate(v);
    }

    // Pass 2: contract tree edges whose endpoint bags are nested, keeping
    // the superset bag — the standard width-preserving simplification,
    // applied in both directions (in elimination trees the *parent* bag is
    // frequently the subset, e.g. along the shrinking chain a single wide
    // edge produces). `merged_into` chains dropped bags to their survivor.
    let len = order.len();
    let mut alive = vec![true; len];
    let mut merged_into: Vec<usize> = (0..len).collect();
    let find = |merged_into: &[usize], mut x: usize| -> usize {
        while merged_into[x] != x {
            x = merged_into[x];
        }
        x
    };
    loop {
        let mut changed = false;
        for i in 0..len {
            if !alive[i] {
                continue;
            }
            let Some(p_raw) = parent[i] else { continue };
            let p = find(&merged_into, p_raw);
            if bags[i].is_subset_of(&bags[p]) {
                // Drop i; its children re-resolve to p through the chain.
                alive[i] = false;
                merged_into[i] = p;
                changed = true;
            } else if bags[p].is_subset_of(&bags[i]) {
                // Drop the parent; i takes over its parent link.
                parent[i] = parent[p];
                alive[p] = false;
                merged_into[p] = i;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: build the tree over surviving bags. The representative of
    // the last elimination is the root; other parentless bags — one per
    // extra connected component — also hang under it (they share no
    // variables with it, so connectedness is unaffected).
    let root_idx = find(&merged_into, len - 1);
    debug_assert!(alive[root_idx]);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); len];
    for i in 0..len {
        if !alive[i] || i == root_idx {
            continue;
        }
        let p = match parent[i] {
            Some(p_raw) => find(&merged_into, p_raw),
            None => root_idx,
        };
        debug_assert_ne!(p, i, "contraction keeps the forest acyclic");
        children[p].push(i);
    }
    let mut tree = RootedTree::new();
    let mut chi = vec![bags[root_idx].clone()];
    let mut stack = vec![(root_idx, tree.root())];
    while let Some((i, node)) = stack.pop() {
        for &c in &children[i] {
            let child_node = tree.add_child(node);
            debug_assert_eq!(child_node.index(), chi.len());
            chi.push(bags[c].clone());
            stack.push((c, child_node));
        }
    }

    // Pass 4: λ-labels by greedy edge cover of each bag.
    let lambda = chi.iter().map(|bag| greedy_cover(h, bag)).collect();
    HypertreeDecomposition::new(tree, chi, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{cover_greedy_order, min_degree_order, min_fill_order};
    use hypertree_core::opt;

    fn check_all_orderings(h: &Hypergraph) -> Vec<HypertreeDecomposition> {
        [
            min_degree_order(h),
            min_fill_order(h),
            cover_greedy_order(h),
        ]
        .into_iter()
        .map(|order| {
            let hd = decompose_with_order(h, &order);
            assert_eq!(hd.validate_ghd(h), Ok(()), "order {order:?} on {h:?}");
            hd
        })
        .collect()
    }

    #[test]
    fn cycle_decomposes_at_optimal_width() {
        let h =
            Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 0]]);
        for hd in check_all_orderings(&h) {
            assert_eq!(hd.width(), 2, "cycle bags are 3 vertices / 2 edges");
        }
    }

    #[test]
    fn acyclic_instances_get_width_close_to_one() {
        let h = Hypergraph::from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        for hd in check_all_orderings(&h) {
            assert!(hd.width() <= 2);
            assert!(hd.width() >= 1);
        }
        // A single wide edge: exactly one bag, one cover edge.
        let wide = Hypergraph::from_edge_lists(5, &[&[0, 1, 2, 3, 4]]);
        for hd in check_all_orderings(&wide) {
            assert_eq!(hd.width(), 1);
            assert_eq!(hd.len(), 1, "subset bags merge into the wide bag");
        }
    }

    #[test]
    fn disconnected_and_degenerate_shapes() {
        let disconnected =
            Hypergraph::from_edge_lists(6, &[&[0, 1], &[1, 2], &[0, 2], &[3, 4], &[4, 5], &[3, 5]]);
        for hd in check_all_orderings(&disconnected) {
            assert_eq!(hd.width(), 2);
        }
        let empty = Hypergraph::from_edge_lists(0, &[]);
        let hd = decompose_with_order(&empty, &[]);
        assert_eq!(hd.validate(&empty), Ok(()));
        assert_eq!(hd.width(), 0);
        // Nullary edges and isolated vertices are tolerated.
        let odd = Hypergraph::from_edge_lists(3, &[&[], &[0, 1]]);
        let order = min_degree_order(&odd);
        let hd = decompose_with_order(&odd, &order);
        assert_eq!(hd.validate_ghd(&odd), Ok(()));
        assert_eq!(hd.width(), 1);
    }

    #[test]
    fn width_never_beats_the_exact_optimum() {
        let shapes: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 0],
                vec![1, 3],
            ],
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 0],
                vec![0, 2],
                vec![1, 3],
            ],
        ];
        for edges in shapes {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap_or(0);
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            let hw = opt::hypertree_width(&h);
            for hd in check_all_orderings(&h) {
                assert!(hd.width() >= hw, "heuristic width below hw on {edges:?}");
            }
        }
    }

    #[test]
    fn completion_keeps_ghd_validity() {
        let h = Hypergraph::from_edge_lists(5, &[&[0, 1, 2], &[2, 3], &[3, 4], &[4, 0], &[1, 3]]);
        for hd in check_all_orderings(&h) {
            let complete = hd.complete(&h);
            assert!(complete.is_complete(&h));
            assert_eq!(complete.validate_ghd(&h), Ok(()));
            assert_eq!(complete.width(), hd.width());
        }
    }
}
