//! Local improvement of an elimination order.
//!
//! The width of a bucket-elimination GHD is decided by its widest bag, and
//! the widest bag is decided by where its vertices sit in the order. The
//! improvement pass re-eliminates exactly that neighbourhood under
//! alternative orderings: for each vertex of the widest bag it tries the
//! order with that vertex moved to the front (eliminated before it can
//! accumulate fill) and to the back (eliminated once its neighbourhood has
//! collapsed), keeps the first strict improvement, and repeats from the
//! new order until a round yields nothing. Each probe is a full O(fill)
//! rebuild, but widest bags are small (≈ the width), so rounds are cheap
//! relative to the orderings themselves.

use crate::bucket::decompose_with_order;
use hypergraph::{Hypergraph, NodeId, VertexId};
use hypertree_core::HypertreeDecomposition;

/// Upper bound on improvement rounds used by [`crate::best_decomposition`];
/// each round strictly reduces the width, and widths start ≤ `|edges(H)|`.
pub const DEFAULT_ROUNDS: usize = 16;

/// The χ of a widest bag of `hd` (largest λ, ties to the first node).
fn widest_chi(hd: &HypertreeDecomposition) -> Vec<VertexId> {
    let widest = hd
        .tree()
        .nodes()
        .max_by_key(|&p| hd.lambda(p).len())
        .unwrap_or(NodeId(0));
    hd.chi(widest).to_vec()
}

/// One candidate order with `v` moved to position 0 (front) or the end
/// (back).
fn moved(order: &[VertexId], v: VertexId, to_front: bool) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(order.len());
    if to_front {
        out.push(v);
    }
    out.extend(order.iter().copied().filter(|&u| u != v));
    if !to_front {
        out.push(v);
    }
    out
}

/// Improve `order` by widest-bag re-elimination for at most `rounds`
/// rounds. Returns the best decomposition found and the order producing
/// it; the result is never wider than `decompose_with_order(h, order)`.
pub fn improve_order(
    h: &Hypergraph,
    order: &[VertexId],
    rounds: usize,
) -> (HypertreeDecomposition, Vec<VertexId>) {
    let mut best_order = order.to_vec();
    let mut best = decompose_with_order(h, &best_order);
    for _ in 0..rounds {
        let mut improved = false;
        for v in widest_chi(&best) {
            for to_front in [true, false] {
                let cand_order = moved(&best_order, v, to_front);
                let cand = decompose_with_order(h, &cand_order);
                if cand.width() < best.width() {
                    best = cand;
                    best_order = cand_order;
                    improved = true;
                    break;
                }
            }
            if improved {
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (best, best_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::min_degree_order;
    use hypergraph::Ix;

    #[test]
    fn improvement_never_widens() {
        let shapes: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 0],
                vec![1, 3],
            ],
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 5],
                vec![5, 0],
                vec![0, 3],
            ],
        ];
        for edges in shapes {
            let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
            let max_v = edges.iter().flatten().max().map(|&m| m + 1).unwrap_or(0);
            let h = Hypergraph::from_edge_lists(max_v, &slices);
            let order = min_degree_order(&h);
            let base = decompose_with_order(&h, &order);
            let (better, better_order) = improve_order(&h, &order, DEFAULT_ROUNDS);
            assert!(better.width() <= base.width());
            assert_eq!(better.validate_ghd(&h), Ok(()));
            assert_eq!(
                decompose_with_order(&h, &better_order).width(),
                better.width(),
                "the returned order reproduces the returned decomposition"
            );
        }
    }

    #[test]
    fn improvement_fixes_a_deliberately_bad_order() {
        // A long cycle eliminated in id order produces wide bags near the
        // wrap-around; the improvement pass recovers width 2.
        let n = 12;
        let edges: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        let slices: Vec<&[usize]> = edges.iter().map(|e| e.as_slice()).collect();
        let h = Hypergraph::from_edge_lists(n, &slices);
        let order: Vec<VertexId> = (0..n).map(VertexId::new).collect();
        let (improved, _) = improve_order(&h, &order, DEFAULT_ROUNDS);
        assert_eq!(improved.width(), 2);
    }
}
