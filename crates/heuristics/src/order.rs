//! Vertex elimination orderings over the (progressively filled-in) primal
//! graph of a hypergraph.
//!
//! All three orderings run the same greedy loop — score every live vertex,
//! eliminate the cheapest, connect its live neighbourhood into a clique
//! (the *fill*), repeat — and differ only in the score:
//!
//! * **min-degree** — fewest live neighbours (the classic CSP ordering);
//! * **min-fill** — fewest fill edges created by the elimination;
//! * **cover-greedy** — fewest *hyperedges* a greedy cover needs for the
//!   closed neighbourhood. This reuses the exact engine's candidate-ranking
//!   idea (order candidates by how much of the connecting set they cover):
//!   the closed neighbourhood is exactly the bag the elimination will
//!   produce, so its greedy cover size is the λ-width the bag will cost —
//!   scoring by it optimises the hypertree objective directly, where the
//!   two graph orderings optimise the treewidth proxy.
//!
//! Isolated vertices (in no edge) are excluded: they belong to no bag of
//! any decomposition (`χ ⊆ var(λ)` could never hold for them).

use hypergraph::{EdgeSet, Hypergraph, Ix, VertexId, VertexSet};

/// The primal graph of a hypergraph with in-place fill-in, tracking which
/// vertices are still live. Shared by the ordering loop (which eliminates
/// for real) and the bucket assembly (which replays an order).
pub(crate) struct FillGraph<'h> {
    h: &'h Hypergraph,
    /// Adjacency over *all* vertices (dead ones keep stale rows; every
    /// read masks with `alive`).
    adj: Vec<VertexSet>,
    alive: VertexSet,
}

impl<'h> FillGraph<'h> {
    /// The primal graph of `h`; only vertices incident to at least one
    /// edge are alive.
    pub fn new(h: &'h Hypergraph) -> Self {
        let n = h.num_vertices();
        let mut adj = vec![VertexSet::empty(n); n];
        let mut alive = VertexSet::empty(n);
        for e in h.edges() {
            let vars = h.edge_vertices(e);
            for v in vars {
                adj[v.index()].union_with(vars);
                alive.insert(v);
            }
        }
        for (i, row) in adj.iter_mut().enumerate() {
            row.remove(VertexId::new(i));
        }
        FillGraph { h, adj, alive }
    }

    /// The hypergraph this fill graph was built from.
    pub fn hypergraph(&self) -> &'h Hypergraph {
        self.h
    }

    /// Vertices incident to at least one edge and not yet eliminated.
    pub fn alive(&self) -> &VertexSet {
        &self.alive
    }

    /// The live neighbourhood of `v`.
    pub fn live_neighbors(&self, v: VertexId) -> VertexSet {
        self.adj[v.index()].intersection(&self.alive)
    }

    /// The bag `{v} ∪ N(v)` the elimination of `v` would produce now.
    pub fn bag_of(&self, v: VertexId) -> VertexSet {
        let mut bag = self.live_neighbors(v);
        bag.insert(v);
        bag
    }

    /// Number of fill edges eliminating `v` would create now.
    pub fn fill_in(&self, v: VertexId) -> usize {
        let nbrs = self.live_neighbors(v);
        let members: Vec<VertexId> = nbrs.to_vec();
        let mut fill = 0;
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if !self.adj[a.index()].contains(b) {
                    fill += 1;
                }
            }
        }
        fill
    }

    /// Eliminate `v`: connect its live neighbourhood into a clique, mark
    /// it dead, and return the neighbourhood (the vertices whose scores an
    /// ordering loop must refresh).
    pub fn eliminate(&mut self, v: VertexId) -> VertexSet {
        let nbrs = self.live_neighbors(v);
        for a in &nbrs {
            self.adj[a.index()].union_with(&nbrs);
            self.adj[a.index()].remove(a);
        }
        self.alive.remove(v);
        nbrs
    }
}

/// Greedy set cover of `target` by hyperedges of `h`: repeatedly take the
/// edge covering most still-uncovered vertices (smallest id on ties).
/// Panics if some target vertex occurs in no edge — callers only cover
/// bags, whose members are all edge-incident by construction.
pub(crate) fn greedy_cover(h: &Hypergraph, target: &VertexSet) -> EdgeSet {
    let mut uncovered = target.clone();
    let mut cover = h.empty_edge_set();
    while !uncovered.is_empty() {
        let mut candidates = h.empty_edge_set();
        for v in &uncovered {
            candidates.union_with(h.vertex_edges(v));
        }
        let mut best: Option<(usize, hypergraph::EdgeId)> = None;
        for e in &candidates {
            let gain = h.edge_vertices(e).intersection_len(&uncovered);
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, e));
            }
        }
        let (_, e) = best.expect("bag vertices always occur in some edge");
        cover.insert(e);
        uncovered.difference_with(h.edge_vertices(e));
    }
    cover
}

/// How far an elimination's effects reach for a given score.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Dirty {
    /// The score of `u` depends only on `u`'s own neighbourhood set, so
    /// eliminating `v` can change it only for `u ∈ N(v)` (degree, bag
    /// cover).
    Neighbors,
    /// The score also depends on adjacency *among* `u`'s neighbours
    /// (fill-in): a fill edge added inside `N(v)` changes the score of
    /// every vertex adjacent to both endpoints, which can sit two hops
    /// from `v` — so `N(v)` and all their live neighbours are refreshed.
    TwoHop,
}

/// The greedy elimination loop: scores are cached and refreshed only
/// where the elimination can have changed them (see [`Dirty`]). Lower
/// scores eliminate first; ties break by vertex id for determinism.
fn greedy_order(
    h: &Hypergraph,
    dirty_reach: Dirty,
    mut score: impl FnMut(&FillGraph<'_>, VertexId) -> (usize, usize),
) -> Vec<VertexId> {
    let mut fill = FillGraph::new(h);
    let mut scores: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); h.num_vertices()];
    for v in fill.alive().to_vec() {
        scores[v.index()] = score(&fill, v);
    }
    let mut order = Vec::with_capacity(fill.alive().len());
    loop {
        let next = fill
            .alive()
            .iter()
            .min_by_key(|v| (scores[v.index()], v.index()));
        let Some(best) = next else { break };
        order.push(best);
        let mut dirty = fill.eliminate(best);
        if dirty_reach == Dirty::TwoHop {
            for v in dirty.clone().iter() {
                dirty.union_with(&fill.live_neighbors(v));
            }
        }
        for v in &dirty {
            scores[v.index()] = score(&fill, v);
        }
    }
    order
}

/// Greedy minimum-degree elimination order over the non-isolated vertices.
pub fn min_degree_order(h: &Hypergraph) -> Vec<VertexId> {
    greedy_order(h, Dirty::Neighbors, |fill, v| {
        (fill.live_neighbors(v).len(), 0)
    })
}

/// Greedy minimum-fill elimination order (ties: smaller live degree).
pub fn min_fill_order(h: &Hypergraph) -> Vec<VertexId> {
    greedy_order(h, Dirty::TwoHop, |fill, v| {
        (fill.fill_in(v), fill.live_neighbors(v).len())
    })
}

/// Greedy cover-width elimination order: eliminate the vertex whose bag a
/// greedy edge cover pays least for (ties: smaller live degree).
pub fn cover_greedy_order(h: &Hypergraph) -> Vec<VertexId> {
    greedy_order(h, Dirty::Neighbors, |fill, v| {
        (
            greedy_cover(fill.hypergraph(), &fill.bag_of(v)).len(),
            fill.live_neighbors(v).len(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Hypergraph {
        Hypergraph::from_edge_lists(5, &[&[0, 1], &[1, 2], &[0, 2], &[2, 3], &[3, 4]])
    }

    #[test]
    fn orders_enumerate_nonisolated_vertices_once() {
        let h = Hypergraph::from_edge_lists(6, &[&[0, 1, 2], &[2, 3]]); // 4, 5 isolated
        for order in [
            min_degree_order(&h),
            min_fill_order(&h),
            cover_greedy_order(&h),
        ] {
            let mut ids: Vec<usize> = order.iter().map(|v| v.index()).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3], "isolated vertices excluded");
        }
    }

    #[test]
    fn min_degree_takes_leaves_first() {
        let h = triangle_plus_tail();
        let order = min_degree_order(&h);
        assert_eq!(order[0], VertexId(4), "the degree-1 tail end goes first");
    }

    #[test]
    fn fill_graph_fills_in() {
        let h = Hypergraph::from_edge_lists(4, &[&[0, 1], &[0, 2], &[0, 3]]);
        let mut fill = FillGraph::new(&h);
        assert_eq!(fill.fill_in(VertexId(0)), 3, "star centre fills a triangle");
        assert_eq!(fill.fill_in(VertexId(1)), 0);
        let dirty = fill.eliminate(VertexId(0));
        assert_eq!(dirty.len(), 3);
        // 1,2,3 are now a clique.
        assert_eq!(fill.live_neighbors(VertexId(1)).len(), 2);
        assert_eq!(fill.bag_of(VertexId(2)).len(), 3);
    }

    #[test]
    fn greedy_cover_prefers_big_edges() {
        let h = Hypergraph::from_edge_lists(4, &[&[0, 1, 2, 3], &[0, 1], &[2, 3]]);
        let target = VertexSet::full(4);
        let cover = greedy_cover(&h, &target);
        assert_eq!(cover.len(), 1, "one wide edge suffices");
        let h2 = Hypergraph::from_edge_lists(4, &[&[0, 1], &[2, 3]]);
        assert_eq!(greedy_cover(&h2, &VertexSet::full(4)).len(), 2);
    }

    #[test]
    fn min_fill_scores_never_go_stale() {
        // Fill-in can change two hops from an elimination: with v-a, v-b,
        // a-u, b-u, eliminating v fills a-b and drops u's fill-in from 1
        // to 0 although u ∉ N(v). Cross-check the incremental order
        // against a full-rescore reference (same tie-breaks) on that
        // gadget and on random instances.
        fn reference_min_fill(h: &Hypergraph) -> Vec<VertexId> {
            let mut fill = FillGraph::new(h);
            let mut order = Vec::new();
            loop {
                let next = fill
                    .alive()
                    .iter()
                    .min_by_key(|&v| (fill.fill_in(v), fill.live_neighbors(v).len(), v.index()));
                let Some(best) = next else { break };
                order.push(best);
                fill.eliminate(best);
            }
            order
        }
        // The gadget, plus a pendant on u so v (fill 1) goes before u.
        let gadget = Hypergraph::from_edge_lists(5, &[&[0, 1], &[0, 2], &[1, 3], &[2, 3], &[3, 4]]);
        assert_eq!(min_fill_order(&gadget), reference_min_fill(&gadget));
        for seed in [1u64, 5, 9, 13] {
            let h =
                workloads::random::random_hypergraph(&mut workloads::random::rng(seed), 12, 14, 3);
            assert_eq!(min_fill_order(&h), reference_min_fill(&h), "seed {seed}");
        }
    }

    #[test]
    fn cover_greedy_sees_hyperedges_where_graphs_see_cliques() {
        // One wide edge looks like a clique to the graph orderings but
        // costs a single cover edge.
        let h = Hypergraph::from_edge_lists(5, &[&[0, 1, 2, 3, 4]]);
        let order = cover_greedy_order(&h);
        assert_eq!(order.len(), 5);
        let fill = FillGraph::new(&h);
        assert_eq!(greedy_cover(&h, &fill.bag_of(VertexId(0))).len(), 1);
    }
}
