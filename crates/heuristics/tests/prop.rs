//! Property tests for the heuristic subsystem: on random small
//! hypergraphs — where the exact engine is cheap — every heuristic
//! decomposition must be a valid GHD and its width an upper bound on the
//! exact hypertree width, for all three orderings, with and without the
//! improvement pass.

use heuristics::{
    best_decomposition, decompose_auto, decompose_with, elimination_order, improve_order,
    ALL_ORDERINGS,
};
use hypergraph::Hypergraph;
use hypertree_core::opt;
use proptest::prelude::*;

/// A random hypergraph with up to `max_v` vertices and `max_e` edges,
/// each edge a non-empty subset of ≤ 4 vertices (the same shape space as
/// the hypergraph substrate's property suite).
fn arb_hypergraph(max_v: usize, max_e: usize) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..n, 1..=n.min(4)),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let edge_refs: Vec<Vec<usize>> =
                edges.into_iter().map(|s| s.into_iter().collect()).collect();
            let slices: Vec<&[usize]> = edge_refs.iter().map(|e| e.as_slice()).collect();
            Hypergraph::from_edge_lists(n, &slices)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every ordering yields a valid GHD whose width upper-bounds `hw(h)`;
    /// the improvement pass preserves both properties and never widens.
    #[test]
    fn heuristic_widths_upper_bound_the_exact_width(h in arb_hypergraph(10, 8)) {
        let hw = opt::hypertree_width(&h);
        for heur in ALL_ORDERINGS {
            let hd = decompose_with(&h, heur);
            prop_assert_eq!(hd.validate_ghd(&h), Ok(()), "{} produced an invalid GHD", heur.name());
            prop_assert!(hd.width() >= hw, "{}: width {} below hw {}", heur.name(), hd.width(), hw);

            let order = elimination_order(&h, heur);
            let (improved, _) = improve_order(&h, &order, 8);
            prop_assert_eq!(improved.validate_ghd(&h), Ok(()));
            prop_assert!(improved.width() <= hd.width());
            prop_assert!(improved.width() >= hw);

            // The completed decomposition (what evaluation consumes) stays
            // GHD-valid at the same width.
            let complete = hd.complete(&h);
            prop_assert!(complete.is_complete(&h));
            prop_assert_eq!(complete.validate_ghd(&h), Ok(()));
        }
    }

    /// `best_decomposition` is never wider than any single ordering, and
    /// `decompose_auto` with a generous budget returns the exact width.
    #[test]
    fn auto_matches_exact_on_small_instances(h in arb_hypergraph(8, 6)) {
        let hw = opt::hypertree_width(&h);
        let best = best_decomposition(&h);
        prop_assert_eq!(best.validate_ghd(&h), Ok(()));
        prop_assert!(best.width() >= hw);

        let auto = decompose_auto(&h, 1_000_000);
        prop_assert_eq!(auto.hd.validate_ghd(&h), Ok(()));
        prop_assert_eq!(auto.hd.width(), hw,
            "with an ample budget the funnel lands on the exact width");
    }
}
