//! Random instances and databases (seeded, reproducible).
//!
//! Random hypergraphs and queries drive the property tests and the width
//! surveys; the database generators produce (a) uniform random relations
//! with controlled size/domain, (b) instances with a *planted* satisfying
//! assignment (guaranteed-true Boolean queries), and (c) the adversarial
//! "blow-up" databases for experiment E10, where naive join intermediate
//! results grow multiplicatively while the decomposition-based engines
//! stay flat.

use cq::{ConjunctiveQuery, QueryBuilder, Term};
use hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use relation::{Database, Relation};

/// A seeded RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random hypergraph: `n` vertices, `m` edges, arities in
/// `2..=max_arity`, every edge a uniformly chosen vertex subset.
pub fn random_hypergraph(rng: &mut StdRng, n: usize, m: usize, max_arity: usize) -> Hypergraph {
    assert!(n >= 1 && max_arity >= 2);
    let mut b = Hypergraph::builder();
    for i in 0..n {
        b.add_vertex(format!("X{i}"));
    }
    for e in 0..m {
        let arity = rng.random_range(2..=max_arity.min(n));
        let mut members: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: the first `arity` entries are the edge.
        for i in 0..arity {
            let j = rng.random_range(i..n);
            members.swap(i, j);
        }
        let vs: Vec<hypergraph::VertexId> = members[..arity]
            .iter()
            .map(|&v| hypergraph::VertexId(v as u32))
            .collect();
        b.add_edge(format!("e{e}"), &vs);
    }
    b.build()
}

/// A random Boolean conjunctive query with the same shape distribution as
/// [`random_hypergraph`]; atom `i` uses predicate `r{i}`.
pub fn random_query(
    rng: &mut StdRng,
    n_vars: usize,
    m_atoms: usize,
    max_arity: usize,
) -> ConjunctiveQuery {
    let h = random_hypergraph(rng, n_vars, m_atoms, max_arity);
    let mut b = QueryBuilder::default();
    let vars: Vec<_> = h.vertices().map(|v| b.var(h.vertex_name(v))).collect();
    for e in h.edges() {
        let terms: Vec<Term> = h
            .edge_vertices(e)
            .iter()
            .map(|v| Term::Var(vars[hypergraph::Ix::index(v)]))
            .collect();
        b.atom(format!("r{}", hypergraph::Ix::index(e)), terms);
    }
    b.build()
}

/// A uniform random database for `q`: each predicate gets `rows` tuples
/// with values drawn from `0..domain`.
pub fn random_database(
    rng: &mut StdRng,
    q: &ConjunctiveQuery,
    domain: u64,
    rows: usize,
) -> Database {
    let mut db = Database::new();
    for atom in q.atoms() {
        if db.get(&atom.predicate).is_none() {
            db.insert(atom.predicate.clone(), Relation::new(atom.arity()));
        }
    }
    let preds: Vec<(String, usize)> = q
        .atoms()
        .iter()
        .map(|a| (a.predicate.clone(), a.arity()))
        .collect();
    for (pred, arity) in preds {
        let mut rel = Relation::with_capacity(arity, rows);
        let mut buf = vec![relation::Value(0); arity];
        for _ in 0..rows {
            for v in buf.iter_mut() {
                *v = relation::Value(rng.random_range(0..domain));
            }
            rel.push_row(&buf);
        }
        rel.dedup();
        db.insert(pred, rel);
    }
    db
}

/// Like [`random_database`], but with a planted satisfying assignment so
/// the Boolean query is guaranteed true: one consistent tuple per atom is
/// inserted on top of the random ones.
pub fn planted_database(
    rng: &mut StdRng,
    q: &ConjunctiveQuery,
    domain: u64,
    rows: usize,
) -> Database {
    let mut db = random_database(rng, q, domain, rows);
    let assignment: Vec<u64> = (0..q.num_vars())
        .map(|_| rng.random_range(0..domain))
        .collect();
    for atom in q.atoms() {
        let tuple: Vec<u64> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => assignment[hypergraph::Ix::index(*v)],
                Term::Const(c) => *c,
            })
            .collect();
        db.add_fact(&atom.predicate, &tuple);
    }
    db
}

/// The E10 adversarial database for chain/cycle queries over binary
/// predicates `r0..r{n-1}`: every relation is the same random bipartite
/// relation on `0..domain` with out-degree ≈ `degree`, so naive
/// left-to-right joins grow by a factor ≈ `degree` per step while the
/// final (cycle-closing) result stays sparse.
pub fn blowup_database(
    rng: &mut StdRng,
    num_predicates: usize,
    domain: u64,
    degree: usize,
) -> Database {
    let mut db = Database::new();
    for p in 0..num_predicates {
        let mut rel = Relation::with_capacity(2, domain as usize * degree);
        for x in 0..domain {
            for _ in 0..degree {
                let y = rng.random_range(0..domain);
                rel.push_row(&[relation::Value(x), relation::Value(y)]);
            }
        }
        rel.dedup();
        db.insert(format!("r{p}"), rel);
    }
    db
}

/// A path-shaped database where every `r{i}` is the successor relation on
/// `0..domain` — linear joins, used as the benign E10 control.
pub fn successor_database(num_predicates: usize, domain: u64) -> Database {
    let mut db = Database::new();
    for p in 0..num_predicates {
        let mut rel = Relation::with_capacity(2, domain as usize);
        for x in 0..domain.saturating_sub(1) {
            rel.push_row(&[relation::Value(x), relation::Value(x + 1)]);
        }
        db.insert(format!("r{p}"), rel);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn generators_are_reproducible() {
        let h1 = random_hypergraph(&mut rng(7), 8, 6, 3);
        let h2 = random_hypergraph(&mut rng(7), 8, 6, 3);
        assert_eq!(h1, h2);
        let q1 = random_query(&mut rng(9), 6, 5, 3);
        let q2 = random_query(&mut rng(9), 6, 5, 3);
        assert_eq!(q1, q2);
    }

    #[test]
    fn random_database_shapes() {
        let q = families::path(3);
        let db = random_database(&mut rng(1), &q, 50, 100);
        for atom in q.atoms() {
            let rel = db.get(&atom.predicate).unwrap();
            assert_eq!(rel.arity(), 2);
            assert!(rel.len() <= 100);
            assert!(rel.len() > 50, "dedup should not halve uniform data");
        }
    }

    #[test]
    fn planted_database_is_satisfiable() {
        let q = families::cycle(5);
        let db = planted_database(&mut rng(3), &q, 40, 30);
        assert_eq!(eval::evaluate_boolean(&q, &db), Ok(true));
    }

    #[test]
    fn blowup_database_has_expected_degree() {
        let db = blowup_database(&mut rng(4), 3, 100, 5);
        let r0 = db.get("r0").unwrap();
        assert!(r0.len() > 400, "≈ domain × degree rows");
        assert!(r0.len() <= 500);
    }

    #[test]
    fn successor_database_chains() {
        let db = successor_database(2, 10);
        let q = families::path_endpoints(2);
        let out = eval::evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 8); // (0,2) .. (7,9)
    }
}
