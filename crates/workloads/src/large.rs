//! The large-instance tier: parameterised CSP-style hypergraphs with
//! hundreds of edges.
//!
//! These instances are the regime the exact `k-decomp` engine cannot
//! touch — its candidate enumeration is `C(m, k)` per subproblem — while
//! the heuristic subsystem (`crates/heuristics`) decomposes them in
//! milliseconds. They are *banded*: every constraint's variables live in a
//! window of bounded width over the variable line (wrap-around for the
//! cyclic variant), the classic structure of scheduling/temporal CSPs.
//! The band keeps the true width small and independent of the instance
//! size, so heuristic decompositions stay narrow enough to evaluate
//! through the Lemma 4.6 pipeline — scenario coverage, not just a stress
//! test.

use hypergraph::{Hypergraph, Ix, VertexId};
use rand::rngs::StdRng;
use rand::RngExt;

/// A banded random CSP hypergraph: `n_vars` variables, `n_edges`
/// constraints, each over 2..=`max_arity` distinct variables drawn from a
/// random window of `band` consecutive variables. When `wrap` is set the
/// windows wrap around (a cyclic band, so the instance is never acyclic
/// by accident).
pub fn banded_csp(
    rng: &mut StdRng,
    n_vars: usize,
    n_edges: usize,
    band: usize,
    max_arity: usize,
    wrap: bool,
) -> Hypergraph {
    assert!(n_vars >= band && band >= 2 && max_arity >= 2);
    let mut b = Hypergraph::builder();
    for i in 0..n_vars {
        b.add_vertex(format!("X{i}"));
    }
    let offsets = if wrap { n_vars } else { n_vars - band + 1 };
    for e in 0..n_edges {
        let offset: usize = rng.random_range(0..offsets);
        let arity: usize = rng.random_range(2..=max_arity.min(band));
        // Partial Fisher–Yates over the window positions.
        let mut window: Vec<usize> = (0..band).collect();
        for i in 0..arity {
            let j = rng.random_range(i..band);
            window.swap(i, j);
        }
        let mut vs: Vec<VertexId> = window[..arity]
            .iter()
            .map(|&w| VertexId::new((offset + w) % n_vars))
            .collect();
        vs.sort_unstable();
        b.add_edge(format!("e{e}"), &vs);
    }
    b.build()
}

/// One named instance of the large tier.
pub struct LargeInstance {
    /// Stable `group/case` id (the bench entry key).
    pub name: &'static str,
    /// The instance hypergraph.
    pub h: Hypergraph,
}

/// The large-instance tier: every instance has ≥ 100 edges, far beyond
/// the exact engine's reach, with banded structure that keeps heuristic
/// widths small. Deterministic (seeded) and stable across runs — bench
/// entries key on the names.
pub fn large_tier() -> Vec<LargeInstance> {
    let gi = |name, h| LargeInstance { name, h };
    vec![
        gi(
            "band/n120_m150_w8",
            banded_csp(&mut crate::random::rng(0xA11), 120, 150, 8, 3, false),
        ),
        gi(
            "band/n300_m400_w10",
            banded_csp(&mut crate::random::rng(0xA12), 300, 400, 10, 3, true),
        ),
        gi(
            "band/n500_m700_w12",
            banded_csp(&mut crate::random::rng(0xA13), 500, 700, 12, 4, true),
        ),
        gi(
            "band/n800_m1000_w8",
            banded_csp(&mut crate::random::rng(0xA14), 800, 1000, 8, 3, true),
        ),
        gi("grid/8x40", crate::families::grid(8, 40).hypergraph()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Ix;

    #[test]
    fn tier_is_large_and_deterministic() {
        let tier = large_tier();
        assert!(tier.len() >= 4);
        let large = tier.iter().filter(|i| i.h.num_edges() >= 100).count();
        assert!(large >= 3, "the tier must carry ≥ 3 instances ≥ 100 edges");
        let mut names: Vec<_> = tier.iter().map(|i| i.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tier.len(), "names must be unique");
        // Determinism: a second construction is structurally identical.
        for (a, b) in tier.iter().zip(large_tier().iter()) {
            assert_eq!(a.h, b.h, "{} must be reproducible", a.name);
        }
    }

    #[test]
    fn banded_edges_stay_in_their_window() {
        let band = 9;
        let n = 100;
        let h = banded_csp(&mut crate::random::rng(3), n, 200, band, 4, false);
        assert_eq!(h.num_edges(), 200);
        for e in h.edges() {
            let ids: Vec<usize> = h.edge_vertices(e).iter().map(|v| v.index()).collect();
            assert!(ids.len() >= 2);
            let span = ids.iter().max().unwrap() - ids.iter().min().unwrap();
            assert!(span < band, "edge {ids:?} escapes its band");
        }
    }

    #[test]
    fn tier_roundtrips_through_the_hg_format() {
        for inst in large_tier() {
            let text = crate::hg::write_hg(&inst.h);
            let parsed = crate::hg::parse_hg(&text).unwrap();
            assert_eq!(
                crate::hg::write_hg(&parsed),
                text,
                "{} must roundtrip at the text level",
                inst.name
            );
            assert_eq!(parsed.num_edges(), inst.h.num_edges());
            // Vertices in no edge are not representable in the format, so
            // only edge-incident vertices survive.
            let incident = inst.h.num_vertices() - inst.h.isolated_vertices().len();
            assert_eq!(parsed.num_vertices(), incident);
        }
    }
}
