//! A plain-text hypergraph format (HyperBench style).
//!
//! One edge per line, `name(v1,v2,...)`; `#` and `%` start comments;
//! blank lines and a trailing `,` or `.` after an edge are tolerated.
//! Vertices are interned by name in order of first occurrence, so
//! `write ∘ parse` is the identity on the text and `parse ∘ write`
//! preserves the structure up to vertex renumbering (vertices occurring
//! in no edge are not representable — the format, like HyperBench's, only
//! speaks about edges). This is how large external instances (CSP
//! benchmarks, query logs) enter the workspace without going through the
//! conjunctive-query parser.
//!
//! ```text
//! # a triangle
//! e0(X,Y)
//! e1(Y,Z)
//! e2(Z,X)
//! ```

use hypergraph::Hypergraph;
use std::fmt;

/// A parse failure: the offending 1-based line and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HgParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for HgParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for HgParseError {}

fn err(line: usize, message: impl Into<String>) -> HgParseError {
    HgParseError {
        line,
        message: message.into(),
    }
}

/// `true` for names the writer can emit and the parser reads back
/// unchanged: non-empty, no whitespace or `( ) , # %` characters.
fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && !s
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '#' | '%'))
}

/// Parse the `.hg` text into a hypergraph.
pub fn parse_hg(input: &str) -> Result<Hypergraph, HgParseError> {
    let mut b = Hypergraph::builder();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        // Strip comments, then surrounding whitespace and a list/statement
        // terminator.
        let code = raw.split(['#', '%']).next().unwrap_or("").trim();
        let code = code
            .strip_suffix([',', '.'])
            .map(str::trim_end)
            .unwrap_or(code);
        if code.is_empty() {
            continue;
        }
        let Some(open) = code.find('(') else {
            return Err(err(
                lineno,
                format!("expected `name(v1,...)`, got `{code}`"),
            ));
        };
        // `find('(')` returned a byte offset of the ASCII `(`, so the
        // slice one past it is always in bounds.
        let rest = &code[open + 1..];
        let Some(args) = rest.strip_suffix(')') else {
            return Err(err(lineno, "missing closing `)`"));
        };
        let name = code[..open].trim();
        if !valid_name(name) {
            return Err(err(lineno, format!("invalid edge name `{name}`")));
        }
        let args = args.trim();
        let mut vertices = Vec::new();
        if !args.is_empty() {
            for v in args.split(',') {
                let v = v.trim();
                if !valid_name(v) {
                    return Err(err(lineno, format!("invalid vertex name `{v}`")));
                }
                vertices.push(v);
            }
        }
        b.edge_by_names(name, &vertices);
    }
    Ok(b.build())
}

/// Render `h` in the `.hg` format, one `name(v1,...)` line per edge in
/// argument order. Panics if a name cannot survive the roundtrip (the
/// generators in this workspace always produce clean names).
pub fn write_hg(h: &Hypergraph) -> String {
    let mut out = String::new();
    for e in h.edges() {
        assert!(
            valid_name(h.edge_name(e)),
            "edge name {:?} is not writable",
            h.edge_name(e)
        );
        let vars: Vec<&str> = h
            .edge_vertex_list(e)
            .iter()
            .map(|&v| {
                let name = h.vertex_name(v);
                assert!(valid_name(name), "vertex name {name:?} is not writable");
                name
            })
            .collect();
        out.push_str(h.edge_name(e));
        out.push('(');
        out.push_str(&vars.join(","));
        out.push_str(")\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_terminators() {
        let text = "\
# triangle with decoration
e0(X,Y),   % inline comment
e1(Y,Z).

e2(Z,X)
";
        let h = parse_hg(text).unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.display_edge(hypergraph::EdgeId(0)), "e0(X,Y)");
        assert!(h.is_connected());
    }

    #[test]
    fn roundtrip_is_identity() {
        let text = "a(X,Y,Z)\nb(Z,W)\nc(W,X)\nunit(V)\n";
        let h = parse_hg(text).unwrap();
        assert_eq!(write_hg(&h), text);
        let h2 = parse_hg(&write_hg(&h)).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn generated_hypergraphs_roundtrip() {
        // Vertex *ids* may be renumbered by first occurrence, but the
        // rendered text — names, arities, argument order — is a fixpoint.
        let h = crate::random::random_hypergraph(&mut crate::random::rng(11), 20, 30, 4);
        let text = write_hg(&h);
        let h2 = parse_hg(&text).unwrap();
        assert_eq!(write_hg(&h2), text);
        assert_eq!(h2.num_edges(), h.num_edges());
        for e in h.edges() {
            assert_eq!(h2.edge_name(e), h.edge_name(e));
            assert_eq!(
                h2.edge_vertices(e).len(),
                h.edge_vertices(e).len(),
                "arity preserved for {}",
                h.edge_name(e)
            );
        }
    }

    #[test]
    fn nullary_edges_roundtrip() {
        let h = parse_hg("zero()\none(X)\n").unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge_vertices(hypergraph::EdgeId(0)).len(), 0);
        assert_eq!(parse_hg(&write_hg(&h)).unwrap(), h);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_hg("fine(X)\nnot a line\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = parse_hg("broken(X\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("closing"), "{e}");
        let e = parse_hg("(X,Y)\n").unwrap_err();
        assert!(e.message.contains("invalid edge name"), "{e}");
        let e = parse_hg("r(X,,Y)\n").unwrap_err();
        assert!(e.message.contains("invalid vertex name"), "{e}");
    }

    #[test]
    fn duplicate_vertex_mentions_collapse_within_an_edge() {
        let h = parse_hg("r(X,X,Y)\n").unwrap();
        assert_eq!(h.edge_vertices(hypergraph::EdgeId(0)).len(), 2);
        // The writer emits the collapsed argument list.
        assert_eq!(write_hg(&h), "r(X,Y)\n");
    }
}
