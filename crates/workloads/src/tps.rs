//! Strict 3-partitioning systems (Definition 7.2, Lemma 7.3).
//!
//! A 3PS on a base set `S` is a family of 3-partitions of `S` whose
//! classes are pairwise distinct across partitions. It is *strict* when
//! the only way to write `S` as a union of three classes is to take one of
//! the designated partitions. Lemma 7.3 constructs a strict `(m,k)`-3PS
//! (at least `m` partitions, every class of size ≥ `k`) in `O(m² + km)`
//! time — the combinatorial backbone of the Theorem 3.4 NP-hardness
//! reduction.

/// A 3-partitioning system over base set `{0, .., base_size-1}`.
#[derive(Clone, Debug)]
pub struct ThreePartitioningSystem {
    base_size: usize,
    /// `partitions[i]` = the classes `(Sᵢa, Sᵢb, Sᵢc)` as sorted id lists.
    partitions: Vec<[Vec<usize>; 3]>,
}

impl ThreePartitioningSystem {
    /// Number of elements in the base set `S`.
    pub fn base_size(&self) -> usize {
        self.base_size
    }

    /// The designated 3-partitions.
    pub fn partitions(&self) -> &[[Vec<usize>; 3]] {
        &self.partitions
    }

    /// All classes, flattened.
    pub fn classes(&self) -> Vec<&Vec<usize>> {
        self.partitions.iter().flat_map(|p| p.iter()).collect()
    }

    /// Check the 3PS axioms: each partition's classes are non-empty,
    /// disjoint, and cover `S`; classes are pairwise distinct across the
    /// family.
    pub fn is_valid(&self) -> bool {
        let mut seen_classes: Vec<&Vec<usize>> = Vec::new();
        for p in &self.partitions {
            let mut covered = vec![false; self.base_size];
            let mut count = 0usize;
            for class in p {
                if class.is_empty() {
                    return false;
                }
                for &x in class {
                    if x >= self.base_size || covered[x] {
                        return false; // out of range or overlapping
                    }
                    covered[x] = true;
                    count += 1;
                }
            }
            if count != self.base_size {
                return false; // not a cover
            }
            for class in p {
                if seen_classes.contains(&class) {
                    return false; // class repeated across partitions
                }
                seen_classes.push(class);
            }
        }
        true
    }

    /// Exhaustively check strictness: every triple of classes whose union
    /// is `S` must be (a permutation of) a designated partition.
    /// `O(c³·|S|)` — use on the small systems of the test suite.
    pub fn is_strict_exhaustive(&self) -> bool {
        let classes = self.classes();
        let c = classes.len();
        for i in 0..c {
            for j in i + 1..c {
                for l in j + 1..c {
                    let mut covered = vec![false; self.base_size];
                    for &x in classes[i].iter().chain(classes[j]).chain(classes[l]) {
                        covered[x] = true;
                    }
                    if covered.iter().all(|&b| b) && !self.is_designated(&[i, j, l]) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn is_designated(&self, class_indices: &[usize; 3]) -> bool {
        // Class t of partition p has flat index 3p + t.
        let p = class_indices[0] / 3;
        class_indices.iter().all(|&ci| ci / 3 == p)
    }
}

/// The Lemma 7.3 construction of a strict `(m,k)`-3PS.
///
/// Base set `S = T ∪ T' ∪ T''` with `T = {X_1..X_{3k+m}}`,
/// `T' = {X'_1..X'_m}`, `T'' = {X''_a, X''_b, X''_c}`, and for `1 ≤ i ≤ m`
///
/// * `Sᵢa = {X_1..X_{k+i-1}} ∪ {X'_1..X'_{m-i}} ∪ {X''_a}`
/// * `Sᵢb = {X_{k+i}..X_{2k+i-1}} ∪ {X''_b}`
/// * `Sᵢc = {X_{2k+i}..X_{3k+m}} ∪ {X'_{m-i+1}..X'_m} ∪ {X''_c}`
///
/// Element ids: `X_j ↦ j-1`, `X'_j ↦ 3k+m + j-1`, `X''_{a,b,c} ↦` the last
/// three ids.
pub fn strict_3ps(m: usize, k: usize) -> ThreePartitioningSystem {
    assert!(m >= 1 && k >= 1);
    let t_len = 3 * k + m;
    let tp_len = m;
    let base_size = t_len + tp_len + 3;
    let t = |j: usize| j - 1; // X_j, 1-based
    let tp = |j: usize| t_len + j - 1; // X'_j, 1-based
    let tpp = |which: usize| t_len + tp_len + which; // X''_{a,b,c}

    let mut partitions = Vec::with_capacity(m);
    for i in 1..=m {
        let sa: Vec<usize> = (1..=k + i - 1)
            .map(t)
            .chain((1..=m - i).map(tp))
            .chain([tpp(0)])
            .collect();
        let sb: Vec<usize> = (k + i..=2 * k + i - 1).map(t).chain([tpp(1)]).collect();
        let sc: Vec<usize> = (2 * k + i..=3 * k + m)
            .map(t)
            .chain((m - i + 1..=m).map(tp))
            .chain([tpp(2)])
            .collect();
        partitions.push([sa, sb, sc]);
    }
    ThreePartitioningSystem {
        base_size,
        partitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_valid_and_strict() {
        for (m, k) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 2)] {
            let s = strict_3ps(m, k);
            assert!(s.is_valid(), "invalid 3PS for m={m}, k={k}");
            assert!(s.is_strict_exhaustive(), "not strict for m={m}, k={k}");
            assert_eq!(s.partitions().len(), m);
        }
    }

    #[test]
    fn class_sizes_meet_the_k_bound() {
        let s = strict_3ps(4, 3);
        for p in s.partitions() {
            for class in p {
                assert!(class.len() >= 3, "class smaller than k");
            }
        }
    }

    #[test]
    fn base_size_matches_lemma() {
        // |S| = (3k + m) + m + 3.
        let s = strict_3ps(5, 2);
        assert_eq!(s.base_size(), 6 + 5 + 5 + 3);
    }

    #[test]
    fn validity_checker_catches_broken_systems() {
        let mut s = strict_3ps(2, 2);
        // Duplicate a class across partitions.
        s.partitions[1][1] = s.partitions[0][1].clone();
        assert!(!s.is_valid());

        let mut s2 = strict_3ps(2, 2);
        // Remove an element from a class: no longer a cover.
        s2.partitions[0][0].pop();
        assert!(!s2.is_valid());
    }

    #[test]
    fn strictness_checker_catches_loose_systems() {
        // A hand-built non-strict system: S = {0,1,2,3,4,5} with two
        // partitions sharing a "rotated" cover.
        let s = ThreePartitioningSystem {
            base_size: 6,
            partitions: vec![
                [vec![0, 1], vec![2, 3], vec![4, 5]],
                [vec![0, 1, 2], vec![3], vec![4, 5, 0]],
            ],
        };
        // {0,1} ∪ {2,3} ∪ {4,5,0} = S but is not designated.
        assert!(!s.is_strict_exhaustive());
    }
}
