//! Parameterised query families used by the experiments.
//!
//! Includes the Theorem 6.2 family `Qn` (query- and hypertree-width 1 but
//! `tw(VAIG(Qn)) = n`), cycles (the canonical hw = 2 family), paths and
//! stars (acyclic controls), grids, cliques, and k-uniform hypercycles.

use cq::{ConjunctiveQuery, QueryBuilder, Term};
use hypergraph::Hypergraph;

/// The Theorem 6.2 family:
/// `Qn = ans ← q(X1..Xn,Y1) ∧ q(X1..Xn,Y2) ∧ … ∧ q(X1..Xn,Yn)`.
/// `qw(Qn) = hw(Qn) = 1` while `tw(VAIG(Qn)) = n`.
pub fn qn(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let mut b = QueryBuilder::default();
    let xs: Vec<_> = (1..=n).map(|i| b.var(&format!("X{i}"))).collect();
    for j in 1..=n {
        let mut terms: Vec<Term> = xs.iter().map(|&x| Term::Var(x)).collect();
        terms.push(Term::Var(b.var(&format!("Y{j}"))));
        b.atom("q", terms);
    }
    b.build()
}

/// The cycle query `C_n`: `r1(X1,X2), r2(X2,X3), …, rn(Xn,X1)`.
/// Cyclic for `n ≥ 3` with `hw = qw = 2`.
pub fn cycle(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let mut b = QueryBuilder::default();
    let vars: Vec<_> = (0..n).map(|i| b.var(&format!("X{i}"))).collect();
    for i in 0..n {
        b.atom(
            format!("r{i}"),
            vec![Term::Var(vars[i]), Term::Var(vars[(i + 1) % n])],
        );
    }
    b.build()
}

/// The path query `P_n`: `r1(X1,X2), …, rn(Xn,Xn+1)` — acyclic.
pub fn path(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let mut b = QueryBuilder::default();
    let vars: Vec<_> = (0..=n).map(|i| b.var(&format!("X{i}"))).collect();
    for i in 0..n {
        b.atom(
            format!("r{i}"),
            vec![Term::Var(vars[i]), Term::Var(vars[i + 1])],
        );
    }
    b.build()
}

/// Non-Boolean variant of [`path`] returning the endpoints:
/// `ans(X0, Xn) ← …` — the workhorse of the enumeration experiments.
pub fn path_endpoints(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let mut b = QueryBuilder::default();
    b.head("ans", &["X0", &format!("X{n}")]);
    let vars: Vec<_> = (0..=n).map(|i| b.var(&format!("X{i}"))).collect();
    for i in 0..n {
        b.atom(
            format!("r{i}"),
            vec![Term::Var(vars[i]), Term::Var(vars[i + 1])],
        );
    }
    b.build()
}

/// The star query: `r1(H,X1), …, rn(H,Xn)` — acyclic.
pub fn star(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let mut b = QueryBuilder::default();
    let hub = b.var("H");
    for i in 0..n {
        let leaf = b.var(&format!("X{i}"));
        b.atom(format!("r{i}"), vec![Term::Var(hub), Term::Var(leaf)]);
    }
    b.build()
}

/// The `w × h` grid query over binary edge atoms: treewidth `min(w,h)` of
/// the primal graph; hypertree width grows with `min(w,h)` as well.
pub fn grid(w: usize, h: usize) -> ConjunctiveQuery {
    assert!(w >= 1 && h >= 1);
    let mut b = QueryBuilder::default();
    let var = |b: &mut QueryBuilder, x: usize, y: usize| b.var(&format!("V{x}_{y}"));
    let mut i = 0;
    for y in 0..h {
        for x in 0..w {
            let v = var(&mut b, x, y);
            if x + 1 < w {
                let r = var(&mut b, x + 1, y);
                b.atom(format!("e{i}"), vec![Term::Var(v), Term::Var(r)]);
                i += 1;
            }
            if y + 1 < h {
                let d = var(&mut b, x, y + 1);
                b.atom(format!("e{i}"), vec![Term::Var(v), Term::Var(d)]);
                i += 1;
            }
        }
    }
    b.build()
}

/// The clique query `K_n` over binary atoms (all pairs).
pub fn clique(n: usize) -> ConjunctiveQuery {
    assert!(n >= 2);
    let mut b = QueryBuilder::default();
    let vars: Vec<_> = (0..n).map(|i| b.var(&format!("X{i}"))).collect();
    let mut e = 0;
    for i in 0..n {
        for j in i + 1..n {
            b.atom(
                format!("r{e}"),
                vec![Term::Var(vars[i]), Term::Var(vars[j])],
            );
            e += 1;
        }
    }
    b.build()
}

/// A k-uniform hypercycle: `n` atoms of arity `k`, atom `i` spanning
/// variables `i·(k-1) .. i·(k-1)+k-1` cyclically. Generalises [`cycle`]
/// (`k = 2`); hypertree width stays 2 while primal treewidth grows with
/// `k` — fodder for the E14 comparison.
pub fn hypercycle(n: usize, k: usize) -> ConjunctiveQuery {
    assert!(n >= 2 && k >= 2);
    let total = n * (k - 1);
    let mut b = QueryBuilder::default();
    let vars: Vec<_> = (0..total).map(|i| b.var(&format!("X{i}"))).collect();
    for i in 0..n {
        let start = i * (k - 1);
        let terms: Vec<Term> = (0..k)
            .map(|j| Term::Var(vars[(start + j) % total]))
            .collect();
        b.atom(format!("r{i}"), terms);
    }
    b.build()
}

/// Convenience: the query hypergraph of a family member.
pub fn hypergraph_of(q: &ConjunctiveQuery) -> Hypergraph {
    q.hypergraph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{acyclic, graph, treewidth};
    use hypertree_core::opt;

    #[test]
    fn qn_family_matches_theorem_6_2() {
        for n in 1..=4 {
            let q = qn(n);
            assert_eq!(q.atoms().len(), n);
            let h = q.hypergraph();
            // qw = hw = 1: acyclic (all atoms share X1..Xn).
            assert!(acyclic::is_acyclic(&h), "Qn is acyclic");
            assert_eq!(opt::hypertree_width(&h), 1);
            // tw(VAIG(Qn)) = n (contains K_{n,n} as a subgraph).
            let vaig = graph::incidence_graph(&h);
            if vaig.len() <= treewidth::EXACT_LIMIT {
                assert_eq!(treewidth::treewidth_exact(&vaig), Some(n));
            }
        }
    }

    #[test]
    fn cycles_have_width_2() {
        for n in 3..8 {
            let h = cycle(n).hypergraph();
            assert!(!acyclic::is_acyclic(&h));
            assert_eq!(opt::hypertree_width(&h), 2);
        }
        assert!(acyclic::is_acyclic(&cycle(2).hypergraph()));
    }

    #[test]
    fn paths_and_stars_are_acyclic() {
        for n in 1..6 {
            assert!(acyclic::is_acyclic(&path(n).hypergraph()));
            assert!(acyclic::is_acyclic(&star(n).hypergraph()));
        }
        assert_eq!(path(4).atoms().len(), 4);
        assert_eq!(path_endpoints(3).head_vars().len(), 2);
    }

    #[test]
    fn grid_widths_grow() {
        assert_eq!(opt::hypertree_width(&grid(2, 2).hypergraph()), 2);
        assert_eq!(opt::hypertree_width(&grid(1, 5).hypergraph()), 1);
        let g33 = grid(3, 3).hypergraph();
        assert_eq!(g33.num_edges(), 12);
        assert!(opt::hypertree_width(&g33) >= 2);
    }

    #[test]
    fn clique_structure() {
        let k4 = clique(4).hypergraph();
        assert_eq!(k4.num_edges(), 6);
        assert_eq!(opt::hypertree_width(&k4), 2);
    }

    #[test]
    fn hypercycle_generalises_cycle() {
        let c = hypercycle(5, 2).hypergraph();
        assert_eq!(c.num_edges(), 5);
        assert_eq!(opt::hypertree_width(&c), 2);
        let h3 = hypercycle(4, 3).hypergraph();
        assert_eq!(h3.num_vertices(), 8);
        assert_eq!(opt::hypertree_width(&h3), 2);
        // Primal treewidth grows with arity even though hw is flat.
        let primal = graph::primal_graph(&h3);
        assert!(treewidth::treewidth_exact(&primal).unwrap() >= 2);
    }
}
