//! The Section 7 NP-hardness gadget: reducing EXACT COVER BY 3-SETS to
//! "does this query have query-width ≤ 4?" (Theorem 3.4).
//!
//! An XC3S instance `I = (R, D)` has `|R| = 3s` elements and a family `D`
//! of 3-element subsets; it is positive iff `s` members of `D` partition
//! `R`. The reduction builds a query whose atoms are
//!
//! * `BLOCKA_a` / `BLOCKB_a` for `0 ≤ a ≤ s` — two 4-atom blocks over the
//!   28 fresh variables `C_a = {V^a_ij}` arranged so that (Lemma 7.1) any
//!   width-4 decomposition must place each block on two adjacent 4-element
//!   nodes;
//! * `LINK_a = link(Y_{a-1}, Z_a)` for `1 ≤ a ≤ s` — chaining the blocks;
//! * `W[D_i]` for each triple `D_i = {x,y,z} ∈ D` — three atoms
//!   `s(x, Sᵢa), s(y, Sᵢb), s(z, Sᵢc)` over the classes of a strict
//!   `(m+1,2)`-3PS (Lemma 7.3), so that covering the base set `S` with
//!   three atoms is only possible by taking a whole `W[D_i]`.
//!
//! A width-4 decomposition then has to dedicate one node per chain slot to
//! `{link} ∪ W[D_i]` for some triple, and Facts 1–8 of the proof force the
//! chosen triples to be disjoint — an exact cover. Conversely
//! [`fig11_decomposition`] builds the paper's Fig. 11 witness from a cover.

use crate::tps::{strict_3ps, ThreePartitioningSystem};
use cq::{ConjunctiveQuery, QueryBuilder, Term};
use hypergraph::{EdgeSet, RootedTree};
use hypertree_core::QueryDecomposition;

/// An EXACT COVER BY 3-SETS instance.
#[derive(Clone, Debug)]
pub struct Xc3sInstance {
    /// `|R| = 3s` elements, identified as `0..num_elements`.
    pub num_elements: usize,
    /// The collection `D` of 3-element subsets (each sorted).
    pub triples: Vec<[usize; 3]>,
}

impl Xc3sInstance {
    /// Build an instance, normalising the triples.
    pub fn new(num_elements: usize, mut triples: Vec<[usize; 3]>) -> Self {
        assert!(num_elements.is_multiple_of(3), "|R| must be 3s");
        for t in &mut triples {
            t.sort_unstable();
            assert!(t[0] != t[1] && t[1] != t[2], "triples have 3 elements");
            assert!(t[2] < num_elements, "element out of range");
        }
        Xc3sInstance {
            num_elements,
            triples,
        }
    }

    /// `s = |R| / 3`.
    pub fn s(&self) -> usize {
        self.num_elements / 3
    }

    /// Exhaustively search for an exact cover; returns the indices of the
    /// chosen triples. Exponential, as it must be; fine for gadget sizes.
    pub fn solve(&self) -> Option<Vec<usize>> {
        let mut covered = vec![false; self.num_elements];
        let mut chosen = Vec::new();
        if self.solve_rec(&mut covered, &mut chosen) {
            Some(chosen)
        } else {
            None
        }
    }

    fn solve_rec(&self, covered: &mut [bool], chosen: &mut Vec<usize>) -> bool {
        let Some(first) = covered.iter().position(|&c| !c) else {
            return true; // everything covered exactly
        };
        for (i, t) in self.triples.iter().enumerate() {
            if t.contains(&first) && t.iter().all(|&x| !covered[x]) {
                for &x in t {
                    covered[x] = true;
                }
                chosen.push(i);
                if self.solve_rec(covered, chosen) {
                    return true;
                }
                chosen.pop();
                for &x in t {
                    covered[x] = false;
                }
            }
        }
        false
    }
}

/// The reduction output: the query plus the bookkeeping needed to build
/// the Fig. 11 decomposition and to locate atoms in the query hypergraph.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The constructed conjunctive query.
    pub query: ConjunctiveQuery,
    /// `s` from the instance.
    pub s: usize,
    /// Atom indices of `BLOCKA_a` (4 atoms each), `0 ≤ a ≤ s`.
    pub block_a: Vec<[usize; 4]>,
    /// Atom indices of `BLOCKB_a` (4 atoms each), `0 ≤ a ≤ s`.
    pub block_b: Vec<[usize; 4]>,
    /// Atom index of `LINK_a`, `1 ≤ a ≤ s` (position `a-1`).
    pub links: Vec<usize>,
    /// Atom indices of `W[D_i]` per triple `i` (3 atoms each).
    pub w_triples: Vec<[usize; 3]>,
}

/// Build the Theorem 3.4 query for an XC3S instance.
pub fn reduce_to_query(inst: &Xc3sInstance) -> Reduction {
    let s = inst.s();
    let m = inst.triples.len();
    let tps: ThreePartitioningSystem = strict_3ps(m + 1, 2);
    let base: Vec<String> = (0..tps.base_size()).map(|i| format!("B{i}")).collect();

    let mut b = QueryBuilder::default();
    let base_vars = |b: &mut QueryBuilder, class: &[usize]| -> Vec<Term> {
        class.iter().map(|&i| Term::Var(b.var(&base[i]))).collect()
    };

    // s_0 drives the blocks; split S⁰a into S' (first element) ∪ S'' (rest).
    let s0 = &tps.partitions()[0];
    let (s0a, s0b, s0c) = (&s0[0], &s0[1], &s0[2]);
    let s_prime: Vec<usize> = vec![s0a[0]];
    let s_dprime: Vec<usize> = s0a[1..].to_vec();

    // P^a_i: the 7 pair-variables of C_a incident to index i (1-based).
    let p_vars = |b: &mut QueryBuilder, a: usize, i: usize| -> Vec<Term> {
        let mut out = Vec::with_capacity(7);
        for j in 1..i {
            out.push(Term::Var(b.var(&format!("V{a}_{j}_{i}"))));
        }
        for k in i + 1..=8 {
            out.push(Term::Var(b.var(&format!("V{a}_{i}_{k}"))));
        }
        out
    };

    let mut block_a = Vec::with_capacity(s + 1);
    let mut block_b = Vec::with_capacity(s + 1);
    let mut atom_count = 0usize;
    let mut push_atom = |b: &mut QueryBuilder, pred: &str, terms: Vec<Term>| -> usize {
        b.atom(pred.to_string(), terms);
        atom_count += 1;
        atom_count - 1
    };

    for a in 0..=s {
        let mut ids_a = [0usize; 4];
        // q(P^a_1, S', Z_a)
        let mut terms = p_vars(&mut b, a, 1);
        terms.extend(base_vars(&mut b, &s_prime));
        terms.push(Term::Var(b.var(&format!("Z{a}"))));
        ids_a[0] = push_atom(&mut b, "q", terms);
        // pa(P^a_2, S'')
        let mut terms = p_vars(&mut b, a, 2);
        terms.extend(base_vars(&mut b, &s_dprime));
        ids_a[1] = push_atom(&mut b, "pa", terms);
        // pb(P^a_3, S⁰b)
        let mut terms = p_vars(&mut b, a, 3);
        terms.extend(base_vars(&mut b, s0b));
        ids_a[2] = push_atom(&mut b, "pb", terms);
        // pc(P^a_4, S⁰c)
        let mut terms = p_vars(&mut b, a, 4);
        terms.extend(base_vars(&mut b, s0c));
        ids_a[3] = push_atom(&mut b, "pc", terms);
        block_a.push(ids_a);

        let mut ids_b = [0usize; 4];
        // q(P^a_5, S', Y_a)
        let mut terms = p_vars(&mut b, a, 5);
        terms.extend(base_vars(&mut b, &s_prime));
        terms.push(Term::Var(b.var(&format!("Y{a}"))));
        ids_b[0] = push_atom(&mut b, "q", terms);
        // pa(P^a_6, S'')
        let mut terms = p_vars(&mut b, a, 6);
        terms.extend(base_vars(&mut b, &s_dprime));
        ids_b[1] = push_atom(&mut b, "pa", terms);
        // pb(P^a_7, S⁰b)
        let mut terms = p_vars(&mut b, a, 7);
        terms.extend(base_vars(&mut b, s0b));
        ids_b[2] = push_atom(&mut b, "pb", terms);
        // pc(P^a_8, S⁰c)
        let mut terms = p_vars(&mut b, a, 8);
        terms.extend(base_vars(&mut b, s0c));
        ids_b[3] = push_atom(&mut b, "pc", terms);
        block_b.push(ids_b);
    }

    let mut links = Vec::with_capacity(s);
    for a in 1..=s {
        let y = b.var(&format!("Y{}", a - 1));
        let z = b.var(&format!("Z{a}"));
        links.push(push_atom(&mut b, "link", vec![Term::Var(y), Term::Var(z)]));
    }

    let mut w_triples = Vec::with_capacity(m);
    for (i, t) in inst.triples.iter().enumerate() {
        let si = &tps.partitions()[i + 1];
        let mut ids = [0usize; 3];
        for (cls, (&elem, class)) in t.iter().zip(si.iter()).enumerate() {
            let mut terms = vec![Term::Var(b.var(&format!("E{elem}")))];
            terms.extend(base_vars(&mut b, class));
            ids[cls] = push_atom(&mut b, "s", terms);
        }
        w_triples.push(ids);
    }

    Reduction {
        query: b.build(),
        s,
        block_a,
        block_b,
        links,
        w_triples,
    }
}

/// Build the Fig. 11 width-4 query decomposition from an exact cover
/// (`cover[a-1]` = index of the triple used at chain slot `a`).
pub fn fig11_decomposition(red: &Reduction, cover: &[usize]) -> QueryDecomposition {
    assert_eq!(cover.len(), red.s, "a cover picks s triples");
    let h = red.query.hypergraph();
    let m_edges = h.num_edges();
    let eset = |ids: &[usize]| -> EdgeSet {
        EdgeSet::from_iter(m_edges, ids.iter().map(|&i| hypergraph::EdgeId(i as u32)))
    };

    // The element-variable of a W atom is its first term.
    let elem_var = |atom_id: usize| -> usize {
        match red.query.atom(atom_id).terms[0] {
            Term::Var(v) => hypergraph::Ix::index(v),
            Term::Const(_) => unreachable!("W atoms start with a variable"),
        }
    };
    // (W atom id, owning triple index) pairs.
    let w_atoms: Vec<(usize, usize)> = red
        .w_triples
        .iter()
        .enumerate()
        .flat_map(|(i, ids)| ids.iter().map(move |&id| (id, i)))
        .collect();

    let mut tree = RootedTree::new();
    let mut labels: Vec<EdgeSet> = Vec::new();

    // Root va0 = BLOCKA_0; child vb0 = BLOCKB_0.
    labels.push(eset(&red.block_a[0]));
    let mut vb = tree.add_child(tree.root());
    labels.push(eset(&red.block_b[0]));

    for a in 1..=red.s {
        let triple_idx = cover[a - 1];
        // vca = {LINK_a} ∪ W[D^a].
        let mut vca_ids = vec![red.links[a - 1]];
        vca_ids.extend(red.w_triples[triple_idx]);
        let vca = tree.add_child(vb);
        labels.push(eset(&vca_ids));

        // Remaining atoms of W(D^a): W atoms of *other* triples whose
        // element variable belongs to the chosen triple — they hang as
        // leaves under vca.
        let chosen_elems: Vec<usize> = red.w_triples[triple_idx]
            .iter()
            .map(|&id| elem_var(id))
            .collect();
        for &(watom, wtriple) in &w_atoms {
            if wtriple != triple_idx && chosen_elems.contains(&elem_var(watom)) {
                let leaf = tree.add_child(vca);
                labels.push(eset(&[watom]));
                debug_assert_eq!(hypergraph::Ix::index(leaf), labels.len() - 1);
            }
        }

        // va_a = BLOCKA_a under vca; vb_a = BLOCKB_a under va_a.
        let va = tree.add_child(vca);
        labels.push(eset(&red.block_a[a]));
        vb = tree.add_child(va);
        labels.push(eset(&red.block_b[a]));
    }

    QueryDecomposition::new(tree, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example Ie of Section 7: R = {0..5},
    /// D1={0,2,3}, D2={0,1,3}, D3={2,3,5}, D4={2,4,5} (0-indexed from the
    /// paper's X1..X6). Positive: D2 ∪ D4 partitions R.
    pub(crate) fn paper_instance() -> Xc3sInstance {
        Xc3sInstance::new(6, vec![[0, 2, 3], [0, 1, 3], [2, 3, 5], [2, 4, 5]])
    }

    #[test]
    fn brute_force_solves_the_paper_instance() {
        let inst = paper_instance();
        let cover = inst.solve().expect("Ie is positive");
        assert_eq!(cover.len(), 2);
        // D2 (index 1) and D4 (index 3) form the cover.
        assert_eq!(cover, vec![1, 3]);
    }

    #[test]
    fn negative_instances_are_detected() {
        // No triple contains element 5.
        let inst = Xc3sInstance::new(6, vec![[0, 1, 2], [1, 2, 3], [0, 3, 4]]);
        assert!(inst.solve().is_none());
        // Overlapping-only family.
        let inst2 = Xc3sInstance::new(6, vec![[0, 1, 2], [2, 3, 4], [4, 5, 0]]);
        assert!(inst2.solve().is_none());
    }

    #[test]
    fn reduction_counts_add_up() {
        let inst = paper_instance();
        let red = reduce_to_query(&inst);
        let s = inst.s();
        let m = inst.triples.len();
        // 8 block atoms per level, s links, 3m W atoms.
        assert_eq!(red.query.atoms().len(), 8 * (s + 1) + s + 3 * m);
        assert_eq!(red.block_a.len(), s + 1);
        assert_eq!(red.links.len(), s);
        assert_eq!(red.w_triples.len(), m);
    }

    #[test]
    fn fig11_validates_at_width_4() {
        let inst = paper_instance();
        let red = reduce_to_query(&inst);
        let cover = inst.solve().unwrap();
        let qd = fig11_decomposition(&red, &cover);
        let h = red.query.hypergraph();
        assert_eq!(qd.validate(&h), Ok(()), "Fig. 11 must be a valid QD");
        assert_eq!(qd.width(), 4);
    }

    #[test]
    fn tiny_positive_instance_end_to_end() {
        // s = 1: R = {0,1,2}, one matching triple plus a decoy that
        // cannot cover alone.
        let inst = Xc3sInstance::new(3, vec![[0, 1, 2]]);
        let red = reduce_to_query(&inst);
        let cover = inst.solve().unwrap();
        let qd = fig11_decomposition(&red, &cover);
        assert_eq!(qd.validate(&red.query.hypergraph()), Ok(()));
        assert_eq!(qd.width(), 4);
    }
}
