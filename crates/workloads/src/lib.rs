//! Workloads for the hypertree-decomposition reproduction: the paper's
//! concrete queries and figures ([`paper`]), parameterised families
//! ([`families`], including the Theorem 6.2 `Qn` family), strict
//! 3-partitioning systems ([`tps`], Lemma 7.3), the Theorem 3.4 XC3S
//! reduction ([`xc3s`], Section 7 / Fig. 11), seeded random instance
//! and database generators ([`random`]), the plain-text `.hg` hypergraph
//! format ([`hg`]), and the large-instance tier for the heuristic
//! subsystem ([`large`], hundreds of edges).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod families;
pub mod hg;
pub mod large;
pub mod paper;
pub mod random;
pub mod tps;
pub mod xc3s;

pub use tps::{strict_3ps, ThreePartitioningSystem};
pub use xc3s::{fig11_decomposition, reduce_to_query, Reduction, Xc3sInstance};
