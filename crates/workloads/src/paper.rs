//! The paper's concrete queries and decompositions.
//!
//! Q1/Q2 (Example 1.1), Q3 (Example 2.1), Q4 (Example 3.2), Q5
//! (Example 3.5), plus executable encodings of the figures: Fig. 2 and
//! Fig. 4 (query decompositions of Q1, Q4), Fig. 5 (a width-3 query
//! decomposition of Q5), and Fig. 6a/6b–Fig. 7 (the hypertree
//! decompositions of Q1 and Q5, the latter in its atom representation).

use cq::{parse_query, ConjunctiveQuery};
use hypergraph::{EdgeSet, Hypergraph, RootedTree, VertexSet};
use hypertree_core::{HypertreeDecomposition, QueryDecomposition};

/// Q1 (Example 1.1): is some student enrolled in a course taught by a
/// parent? Cyclic; `qw(Q1) = hw(Q1) = 2`.
pub fn q1() -> ConjunctiveQuery {
    parse_query("ans :- enrolled(S,C,R), teaches(P,C,A), parent(P,S).").unwrap()
}

/// Q2 (Example 1.1): is there a professor with a child enrolled in some
/// course? Acyclic (Fig. 1 shows a join tree).
pub fn q2() -> ConjunctiveQuery {
    parse_query("ans :- teaches(P,C,A), enrolled(S,C2,R), parent(P,S).").unwrap()
}

/// Q3 (Example 2.1): acyclic (Fig. 3 shows a join tree).
pub fn q3() -> ConjunctiveQuery {
    parse_query("ans :- r(Y,Z), g(X,Y), s(Y,Z,U), s(Z,U,W), t(Y,Z), t(Z,U).").unwrap()
}

/// Q4 (Example 3.2): cyclic with `qw(Q4) = 2` (Fig. 4).
pub fn q4() -> ConjunctiveQuery {
    parse_query("ans :- s(Y,Z,U), g(X,Y), t(Z,X), s(Z,W,X), t(Y,Z).").unwrap()
}

/// Q5 (Example 3.5), the running example: `qw(Q5) = 3` but `hw(Q5) = 2`
/// (the Theorem 6.1(b) separation witness).
pub fn q5() -> ConjunctiveQuery {
    parse_query(
        "ans :- a(S,X,X',C,F), b(S,Y,Y',C',F'), c(C,C',Z), d(X,Z), e(Y,Z), \
         f(F,F',Z'), g(X',Z'), h(Y',Z'), j(J,X,Y,X',Y').",
    )
    .unwrap()
}

fn vset(h: &Hypergraph, names: &[&str]) -> VertexSet {
    let mut s = h.empty_vertex_set();
    for n in names {
        s.insert(
            h.vertex_by_name(n)
                .unwrap_or_else(|| panic!("unknown vertex {n}")),
        );
    }
    s
}

fn eset(h: &Hypergraph, names: &[&str]) -> EdgeSet {
    let mut s = h.empty_edge_set();
    for n in names {
        s.insert(
            h.edge_by_name(n)
                .unwrap_or_else(|| panic!("unknown edge {n}")),
        );
    }
    s
}

/// Fig. 2: the 2-width query decomposition of Q1 —
/// root `{enrolled, teaches}`, child `{enrolled, parent}`.
pub fn fig2_query_decomposition(h: &Hypergraph) -> QueryDecomposition {
    let mut tree = RootedTree::new();
    tree.add_child(tree.root());
    QueryDecomposition::new(
        tree,
        vec![
            eset(h, &["enrolled", "teaches"]),
            eset(h, &["enrolled", "parent"]),
        ],
    )
}

/// Fig. 4: a pure 2-width query decomposition of Q4 — root `{s#0, s#1}`
/// (the two ternary atoms cover all variables), with the binary atoms as
/// leaf children.
pub fn fig4_query_decomposition(h: &Hypergraph) -> QueryDecomposition {
    let mut tree = RootedTree::new();
    tree.add_child(tree.root());
    tree.add_child(tree.root());
    tree.add_child(tree.root());
    QueryDecomposition::new(
        tree,
        vec![
            eset(h, &["s#0", "s#1"]),
            eset(h, &["g"]),
            eset(h, &["t#0"]),
            eset(h, &["t#1"]),
        ],
    )
}

/// Fig. 5 (shape): a 3-width query decomposition of Q5 — root `{a, b}`
/// with children `{j}`, `{c, d, e}`, `{f, g, h}`. (The paper notes Q5
/// "admits several other possible query decompositions of width 3".)
pub fn fig5_query_decomposition(h: &Hypergraph) -> QueryDecomposition {
    let mut tree = RootedTree::new();
    tree.add_child(tree.root());
    tree.add_child(tree.root());
    tree.add_child(tree.root());
    QueryDecomposition::new(
        tree,
        vec![
            eset(h, &["a", "b"]),
            eset(h, &["j"]),
            eset(h, &["c", "d", "e"]),
            eset(h, &["f", "g", "h"]),
        ],
    )
}

/// Fig. 6a: the complete 2-width hypertree decomposition of Q1 —
/// root `χ={P,S,C,A}, λ={teaches, parent}`; child `χ={S,C,R},
/// λ={enrolled}`.
pub fn fig6a_hypertree(h: &Hypergraph) -> HypertreeDecomposition {
    let mut tree = RootedTree::new();
    tree.add_child(tree.root());
    HypertreeDecomposition::new(
        tree,
        vec![vset(h, &["P", "S", "C", "A"]), vset(h, &["S", "C", "R"])],
        vec![eset(h, &["teaches", "parent"]), eset(h, &["enrolled"])],
    )
}

/// Fig. 6b / Fig. 7: the 2-width hypertree decomposition HD5 of Q5.
///
/// In atom representation (Fig. 7):
///
/// ```text
/// {a(S,X,X',C,F), b(S,Y,Y',C',F')}
///   {c(C,C',Z), j(_,X,Y,_,_)}
///     {d(X,Z)}
///     {e(Y,Z)}
///   {f(F,F',Z'), j(_,_,_,X',Y')}
///     {g(X',Z')}
///     {h(Y',Z')}
///   {j(J,X,Y,X',Y')}
/// ```
pub fn fig6b_hypertree(h: &Hypergraph) -> HypertreeDecomposition {
    let mut tree = RootedTree::new();
    let n_zc = tree.add_child(tree.root()); // handles component {Z}
    tree.add_child(n_zc); // d
    tree.add_child(n_zc); // e
    let n_zp = tree.add_child(tree.root()); // handles component {Z'}
    tree.add_child(n_zp); // g
    tree.add_child(n_zp); // h
    tree.add_child(tree.root()); // handles component {J}
    HypertreeDecomposition::new(
        tree,
        vec![
            vset(h, &["S", "X", "X'", "C", "F", "Y", "Y'", "C'", "F'"]),
            vset(h, &["C", "C'", "Z", "X", "Y"]),
            vset(h, &["X", "Z"]),
            vset(h, &["Y", "Z"]),
            vset(h, &["F", "F'", "Z'", "X'", "Y'"]),
            vset(h, &["X'", "Z'"]),
            vset(h, &["Y'", "Z'"]),
            vset(h, &["J", "X", "Y", "X'", "Y'"]),
        ],
        vec![
            eset(h, &["a", "b"]),
            eset(h, &["c", "j"]),
            eset(h, &["d"]),
            eset(h, &["e"]),
            eset(h, &["f", "j"]),
            eset(h, &["g"]),
            eset(h, &["h"]),
            eset(h, &["j"]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::acyclic;
    use hypertree_core::{normal_form, opt};

    #[test]
    fn q1_cyclic_q2_q3_acyclic() {
        assert!(!acyclic::is_acyclic(&q1().hypergraph()));
        let jt2 = acyclic::join_tree(&q2().hypergraph()).expect("Q2 acyclic (Fig. 1)");
        assert_eq!(jt2.validate(&q2().hypergraph()), Ok(()));
        let jt3 = acyclic::join_tree(&q3().hypergraph()).expect("Q3 acyclic (Fig. 3)");
        assert_eq!(jt3.validate(&q3().hypergraph()), Ok(()));
        assert!(!acyclic::is_acyclic(&q4().hypergraph()));
        assert!(!acyclic::is_acyclic(&q5().hypergraph()));
    }

    #[test]
    fn fig2_and_fig4_validate_at_width_2() {
        let h1 = q1().hypergraph();
        let qd = fig2_query_decomposition(&h1);
        assert_eq!(qd.validate(&h1), Ok(()));
        assert_eq!(qd.width(), 2);

        let h4 = q4().hypergraph();
        let qd4 = fig4_query_decomposition(&h4);
        assert_eq!(qd4.validate(&h4), Ok(()));
        assert_eq!(qd4.width(), 2);
    }

    #[test]
    fn fig5_validates_at_width_3() {
        let h = q5().hypergraph();
        let qd = fig5_query_decomposition(&h);
        assert_eq!(qd.validate(&h), Ok(()));
        assert_eq!(qd.width(), 3);
    }

    #[test]
    fn fig6a_validates_and_is_nf() {
        let h = q1().hypergraph();
        let hd = fig6a_hypertree(&h);
        assert_eq!(hd.validate(&h), Ok(()));
        assert_eq!(hd.width(), 2);
        assert!(hd.is_complete(&h));
        assert!(normal_form::is_normal_form(&h, &hd));
    }

    #[test]
    fn fig6b_validates_at_width_2() {
        let h = q5().hypergraph();
        let hd = fig6b_hypertree(&h);
        assert_eq!(hd.validate(&h), Ok(()));
        assert_eq!(hd.width(), 2);
        assert!(hd.is_complete(&h));
    }

    #[test]
    fn widths_match_the_paper() {
        // hw(Q1) = 2 (Example 4.3); hw(Q5) = 2 (Example 4.3);
        // hw(Q2) = hw(Q3) = 1 (acyclic, Theorem 4.5).
        assert_eq!(opt::hypertree_width(&q1().hypergraph()), 2);
        assert_eq!(opt::hypertree_width(&q2().hypergraph()), 1);
        assert_eq!(opt::hypertree_width(&q3().hypergraph()), 1);
        assert_eq!(opt::hypertree_width(&q4().hypergraph()), 2);
        assert_eq!(opt::hypertree_width(&q5().hypergraph()), 2);
    }

    #[test]
    fn fig7_atom_representation_masks_j() {
        let h = q5().hypergraph();
        let hd = fig6b_hypertree(&h);
        let display = hd.display(&h);
        // The {c, j} node masks J, X', Y' inside j.
        assert!(display.contains("j(_,X,Y,_,_)"), "{display}");
        assert!(display.contains("j(J,X,Y,X',Y')"), "{display}");
    }
}
