//! Per-request tracing: phase spans, I/O taps, and the resulting
//! [`QueryTrace`].
//!
//! The disabled path is a single branch: a [`Tracer`] built from
//! [`TraceConfig::Off`] holds no state, its [`Span`]s are `None` and
//! never read the clock, and its [`IoTap`] row accounting is a no-op.
//! This mirrors the budget layer's rate-limited clock discipline
//! (PR 7): untraced requests pay no timestamps beyond what the budget
//! already takes.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::phase::Phase;

/// Whether a request should produce a [`QueryTrace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceConfig {
    /// No tracing: the request pays one branch per would-be span.
    #[default]
    Off,
    /// Full tracing: phase wall times, row/byte accounting, cache and
    /// plan provenance.
    On,
}

impl TraceConfig {
    /// True if tracing is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, TraceConfig::On)
    }
}

/// Plan shape recorded in a trace: how the request was evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanShape {
    /// Acyclic query served through a join tree.
    JoinTree,
    /// Cyclic query served through a hypertree decomposition.
    Hypertree,
}

impl PlanShape {
    /// Stable name used in exports (`join-tree` / `hypertree`).
    pub const fn as_str(self) -> &'static str {
        match self {
            PlanShape::JoinTree => "join-tree",
            PlanShape::Hypertree => "hypertree",
        }
    }
}

// Tri-state encodings for the AtomicU8 provenance cells.
const UNKNOWN: u8 = 0;
const MISS: u8 = 1;
const HIT: u8 = 2;
const KIND_JOIN_TREE: u8 = 1;
const KIND_HYPERTREE: u8 = 2;

/// Per-plan-node accounting cells, allocated lazily the first time an
/// evaluation pipeline declares its node count.
struct NodeCell {
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    rows_scanned: AtomicU64,
}

struct Inner {
    started: Instant,
    phase_ns: [AtomicU64; Phase::COUNT],
    rows_scanned: AtomicU64,
    nodes: OnceLock<Box<[NodeCell]>>,
    plan_cache: AtomicU8,
    decomp_cache: AtomicU8,
    plan_kind: AtomicU8,
    plan_width: AtomicU64,
}

/// The per-request trace collector.
///
/// Threaded by reference through the serving stack; all recording
/// methods take `&self` (interior atomics) so a tracer can be shared
/// with sharded worker closures.
#[derive(Default)]
pub struct Tracer {
    inner: Option<Box<Inner>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a branch and nothing is
    /// recorded. This is the value to pass through paths that do not
    /// trace.
    pub const fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer; the request clock starts now.
    pub fn on() -> Tracer {
        Tracer {
            inner: Some(Box::new(Inner {
                started: Instant::now(),
                phase_ns: [const { AtomicU64::new(0) }; Phase::COUNT],
                rows_scanned: AtomicU64::new(0),
                nodes: OnceLock::new(),
                plan_cache: AtomicU8::new(UNKNOWN),
                decomp_cache: AtomicU8::new(UNKNOWN),
                plan_kind: AtomicU8::new(UNKNOWN),
                plan_width: AtomicU64::new(0),
            })),
        }
    }

    /// Build a tracer from a [`TraceConfig`].
    pub fn new(cfg: TraceConfig) -> Tracer {
        match cfg {
            TraceConfig::Off => Tracer::off(),
            TraceConfig::On => Tracer::on(),
        }
    }

    /// True if this tracer records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a phase span; its wall time is added to the phase's
    /// accumulator when the returned guard drops. Disabled tracers
    /// return an inert guard without reading the clock.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span<'_> {
        match &self.inner {
            Some(inner) => Span(Some(SpanInner {
                inner,
                phase,
                start: Instant::now(),
            })),
            None => Span(None),
        }
    }

    /// A copyable row-accounting tap for handing to meters and worker
    /// closures; `add_rows` on a disabled tap is a no-op branch.
    #[inline]
    pub fn io(&self) -> IoTap<'_> {
        IoTap(self.inner.as_deref().map(|i| &i.rows_scanned))
    }

    /// Declare the plan's node count, allocating one accounting cell
    /// per join-tree / decomposition node. First caller wins: repeated
    /// declarations (the reduction and the pipeline sweeps see the same
    /// completed tree) are no-ops, so cells accumulate across phases of
    /// one request. A no-op on disabled tracers.
    pub fn init_nodes(&self, n: usize) {
        if let Some(i) = &self.inner {
            let _ = i.nodes.set(
                (0..n)
                    .map(|_| NodeCell {
                        rows_in: AtomicU64::new(0),
                        rows_out: AtomicU64::new(0),
                        rows_scanned: AtomicU64::new(0),
                    })
                    .collect(),
            );
        }
    }

    /// A row-accounting tap scoped to one plan node's scanned-rows
    /// cell. Disabled tracers, undeclared tables, and out-of-range
    /// nodes all yield an inert tap.
    #[inline]
    pub fn node_tap(&self, node: usize) -> IoTap<'_> {
        IoTap(
            self.inner
                .as_deref()
                .and_then(|i| i.nodes.get())
                .and_then(|cells| cells.get(node))
                .map(|c| &c.rows_scanned),
        )
    }

    /// Record the row count entering a plan node (its relation size
    /// before any semijoin sweep). Last write wins.
    pub fn note_node_rows_in(&self, node: usize, rows: u64) {
        if let Some(c) = self.node_cell(node) {
            c.rows_in.store(rows, Ordering::Relaxed);
        }
    }

    /// Record the surviving row count at a plan node (its relation
    /// size after the sweeps that touched it). Last write wins, so
    /// after a full reduction this is the consistent-instance size.
    pub fn note_node_rows_out(&self, node: usize, rows: u64) {
        if let Some(c) = self.node_cell(node) {
            c.rows_out.store(rows, Ordering::Relaxed);
        }
    }

    fn node_cell(&self, node: usize) -> Option<&NodeCell> {
        self.inner
            .as_deref()
            .and_then(|i| i.nodes.get())
            .and_then(|cells| cells.get(node))
    }

    /// Record whether the plan cache hit for this request.
    pub fn note_plan_cache(&self, hit: bool) {
        if let Some(i) = &self.inner {
            i.plan_cache
                .store(if hit { HIT } else { MISS }, Ordering::Relaxed);
        }
    }

    /// Record whether the decomposition cache hit (cyclic queries on
    /// the plan-cache miss path only).
    pub fn note_decomp_cache(&self, hit: bool) {
        if let Some(i) = &self.inner {
            i.decomp_cache
                .store(if hit { HIT } else { MISS }, Ordering::Relaxed);
        }
    }

    /// Record the plan shape and (for hypertrees) its width.
    pub fn note_plan(&self, shape: PlanShape, width: u64) {
        if let Some(i) = &self.inner {
            let kind = match shape {
                PlanShape::JoinTree => KIND_JOIN_TREE,
                PlanShape::Hypertree => KIND_HYPERTREE,
            };
            i.plan_kind.store(kind, Ordering::Relaxed);
            i.plan_width.store(width, Ordering::Relaxed);
        }
    }

    /// Close the trace and assemble the [`QueryTrace`]. Returns `None`
    /// for disabled tracers. The execution-outcome fields
    /// (`rows_emitted`, byte/step totals, shard count, truncation) are
    /// supplied by the caller, which owns the budget and the result.
    pub fn finish(&self, outcome: TraceOutcome) -> Option<QueryTrace> {
        let i = self.inner.as_deref()?;
        let mut phase_ns = [0u64; Phase::COUNT];
        for (o, p) in phase_ns.iter_mut().zip(i.phase_ns.iter()) {
            *o = p.load(Ordering::Relaxed);
        }
        let tri = |cell: &AtomicU8| match cell.load(Ordering::Relaxed) {
            HIT => Some(true),
            MISS => Some(false),
            _ => None,
        };
        let plan_kind = match i.plan_kind.load(Ordering::Relaxed) {
            KIND_JOIN_TREE => Some(PlanShape::JoinTree.as_str()),
            KIND_HYPERTREE => Some(PlanShape::Hypertree.as_str()),
            _ => None,
        };
        let node_rows = i
            .nodes
            .get()
            .map(|cells| {
                cells
                    .iter()
                    .map(|c| NodeRows {
                        rows_in: c.rows_in.load(Ordering::Relaxed),
                        rows_out: c.rows_out.load(Ordering::Relaxed),
                        rows_scanned: c.rows_scanned.load(Ordering::Relaxed),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(QueryTrace {
            op: outcome.op,
            total_ns: i.started.elapsed().as_nanos() as u64,
            phase_ns,
            node_rows,
            rows_scanned: i.rows_scanned.load(Ordering::Relaxed),
            rows_emitted: outcome.rows_emitted,
            bytes_charged: outcome.bytes_charged,
            steps_charged: outcome.steps_charged,
            plan_cache_hit: tri(&i.plan_cache),
            decomp_cache_hit: tri(&i.decomp_cache),
            plan_kind,
            plan_width: i.plan_width.load(Ordering::Relaxed),
            shards: outcome.shards,
            truncated: outcome.truncated,
        })
    }
}

struct SpanInner<'a> {
    inner: &'a Inner,
    phase: Phase,
    start: Instant,
}

/// RAII guard for one phase span; see [`Tracer::span`].
pub struct Span<'a>(Option<SpanInner<'a>>);

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(s) = &self.0 {
            s.inner.phase_ns[s.phase.index()]
                .fetch_add(s.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// A copyable handle that accumulates rows-scanned into its tracer;
/// inert (one branch) when tracing is off.
#[derive(Clone, Copy, Default)]
pub struct IoTap<'a>(Option<&'a AtomicU64>);

impl IoTap<'_> {
    /// A tap that records nothing, for untraced code paths.
    pub const fn disabled() -> IoTap<'static> {
        IoTap(None)
    }

    /// Add `n` scanned rows.
    #[inline]
    pub fn add_rows(&self, n: u64) {
        if let Some(c) = self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Execution-outcome fields merged into a [`QueryTrace`] at
/// [`Tracer::finish`] time by the layer that owns the budget and the
/// result.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceOutcome {
    /// Operation name (`boolean`, `enumerate`, `count`).
    pub op: &'static str,
    /// Rows in the answer (enumerations; 0 for boolean/count).
    pub rows_emitted: u64,
    /// Bytes charged against the request's memory budget.
    pub bytes_charged: u64,
    /// Budget steps consumed.
    pub steps_charged: u64,
    /// Effective shard count the request ran with.
    pub shards: u64,
    /// True if the answer is a truncated (sound-prefix) result.
    pub truncated: bool,
}

/// Row accounting for one plan node: relation size entering the
/// pipeline, survivors after the semijoin sweeps, and metered scan
/// work attributed to the node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeRows {
    /// Node relation size entering the pipeline.
    pub rows_in: u64,
    /// Surviving rows after the sweeps that touched the node.
    pub rows_out: u64,
    /// Rows scanned by metered operators attributed to this node.
    pub rows_scanned: u64,
}

/// A completed per-request trace: where the time went and what was
/// touched.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Operation name (`boolean`, `enumerate`, `count`).
    pub op: &'static str,
    /// Wall time from tracer creation to finish, in nanoseconds.
    pub total_ns: u64,
    /// Per-phase wall time in nanoseconds, indexed by
    /// [`Phase::index`]. `enumerate` is a container span that overlaps
    /// `reduce` and `join` (see the [`crate::phase`] docs).
    pub phase_ns: [u64; Phase::COUNT],
    /// Per-plan-node row accounting, indexed by node id in the plan's
    /// rooted tree. Empty unless the evaluation pipeline declared its
    /// node count via [`Tracer::init_nodes`] (requests that fail
    /// before evaluation, or legacy producers, leave it empty).
    pub node_rows: Vec<NodeRows>,
    /// Rows scanned by metered operators.
    pub rows_scanned: u64,
    /// Rows in the answer (enumerations).
    pub rows_emitted: u64,
    /// Bytes charged against the memory budget.
    pub bytes_charged: u64,
    /// Budget steps consumed.
    pub steps_charged: u64,
    /// Plan-cache hit (`None` if the request never probed it).
    pub plan_cache_hit: Option<bool>,
    /// Decomposition-cache hit (`None` unless a cyclic query missed
    /// the plan cache).
    pub decomp_cache_hit: Option<bool>,
    /// `join-tree` or `hypertree` (`None` if planning never ran,
    /// e.g. the request failed to parse).
    pub plan_kind: Option<&'static str>,
    /// Plan width (1 for join trees, the hypertree width otherwise).
    pub plan_width: u64,
    /// Effective shard count.
    pub shards: u64,
    /// True if the answer is a truncated sound prefix.
    pub truncated: bool,
}

impl QueryTrace {
    /// Nanoseconds attributed to `phase`.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Human-readable multi-line rendering (also available through
    /// `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl std::fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace: op={} total={}", self.op, fmt_ns(self.total_ns))?;
        for p in Phase::ALL {
            let ns = self.phase(p);
            if ns > 0 {
                writeln!(f, "  {:<10} {:>10}", p.as_str(), fmt_ns(ns))?;
            }
        }
        writeln!(
            f,
            "  rows: scanned={} emitted={}  budget: bytes={} steps={}",
            self.rows_scanned, self.rows_emitted, self.bytes_charged, self.steps_charged
        )?;
        for (i, nr) in self.node_rows.iter().enumerate() {
            writeln!(
                f,
                "  node[{i}]    in={} out={} scanned={}",
                nr.rows_in, nr.rows_out, nr.rows_scanned
            )?;
        }
        let cache = |v: Option<bool>| match v {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "-",
        };
        write!(
            f,
            "  plan: kind={} width={} plan_cache={} decomp_cache={} shards={}{}",
            self.plan_kind.unwrap_or("-"),
            self.plan_width,
            cache(self.plan_cache_hit),
            cache(self.decomp_cache_hit),
            self.shards,
            if self.truncated { " TRUNCATED" } else { "" }
        )
    }
}

/// A plain monotonic stopwatch for cold-path timing (e.g. sampled
/// whole-request latency) so callers outside `obs` never touch
/// `Instant` directly.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        {
            let _s = t.span(Phase::Reduce);
        }
        t.io().add_rows(100);
        t.note_plan_cache(true);
        assert!(t.finish(TraceOutcome::default()).is_none());
    }

    #[test]
    fn spans_accumulate_into_their_phase() {
        let t = Tracer::on();
        {
            let _s = t.span(Phase::Reduce);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _s = t.span(Phase::Reduce);
        }
        t.io().add_rows(7);
        t.io().add_rows(3);
        t.note_plan_cache(false);
        t.note_decomp_cache(true);
        t.note_plan(PlanShape::Hypertree, 2);
        let tr = t
            .finish(TraceOutcome {
                op: "enumerate",
                rows_emitted: 5,
                bytes_charged: 64,
                steps_charged: 9,
                shards: 4,
                truncated: false,
            })
            .unwrap();
        assert!(tr.phase(Phase::Reduce) >= 2_000_000);
        assert_eq!(tr.phase(Phase::Join), 0);
        assert!(tr.total_ns >= tr.phase(Phase::Reduce));
        assert_eq!(tr.rows_scanned, 10);
        assert_eq!(tr.rows_emitted, 5);
        assert_eq!(tr.plan_cache_hit, Some(false));
        assert_eq!(tr.decomp_cache_hit, Some(true));
        assert_eq!(tr.plan_kind, Some("hypertree"));
        assert_eq!(tr.plan_width, 2);
        assert_eq!(tr.shards, 4);
    }

    #[test]
    fn render_mentions_op_phases_and_provenance() {
        let t = Tracer::on();
        {
            let _s = t.span(Phase::Parse);
        }
        t.note_plan(PlanShape::JoinTree, 0);
        let tr = t
            .finish(TraceOutcome {
                op: "boolean",
                ..TraceOutcome::default()
            })
            .unwrap();
        let text = tr.render();
        assert!(text.contains("op=boolean"));
        assert!(text.contains("kind=join-tree"));
        assert!(text.contains("plan_cache=-"));
        let mut truncated = tr.clone();
        truncated.truncated = true;
        assert!(truncated.render().contains("TRUNCATED"));
    }

    #[test]
    fn node_accounting_is_declared_once_and_scoped() {
        let t = Tracer::on();
        // Taps before declaration are inert.
        t.node_tap(0).add_rows(99);
        t.init_nodes(2);
        t.init_nodes(5); // first declaration wins
        t.note_node_rows_in(0, 10);
        t.note_node_rows_out(0, 4);
        t.node_tap(0).add_rows(7);
        t.node_tap(1).add_rows(3);
        t.node_tap(9).add_rows(100); // out of range: inert
        let tr = t.finish(TraceOutcome::default()).unwrap();
        assert_eq!(tr.node_rows.len(), 2);
        assert_eq!(tr.node_rows[0].rows_in, 10);
        assert_eq!(tr.node_rows[0].rows_out, 4);
        assert_eq!(tr.node_rows[0].rows_scanned, 7);
        assert_eq!(tr.node_rows[1].rows_scanned, 3);
        assert!(tr.render().contains("node[0]"));
    }

    #[test]
    fn disabled_tracer_ignores_node_accounting() {
        let t = Tracer::off();
        t.init_nodes(3);
        t.note_node_rows_in(0, 1);
        t.node_tap(0).add_rows(1);
        assert!(t.finish(TraceOutcome::default()).is_none());
    }

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_ns();
        let b = w.elapsed_ns();
        assert!(b >= a);
    }
}
