//! The flight recorder: a bounded ring of recently completed
//! [`QueryTrace`]s plus a threshold-gated, rate-limited slow-query
//! log.
//!
//! The recorder is built to sit on the request path of a serving
//! layer: recording is one short [`parking_lot::Mutex`] critical
//! section (a `VecDeque` push and a possible pop — no allocation
//! beyond the trace clone), trace ids are assigned from an atomic so
//! exemplar links in metrics never need the lock, and the slow log's
//! rate limiter guarantees a pathological workload cannot turn the
//! log into an allocation treadmill: captures past the configured
//! minimum interval are counted as suppressed instead of stored.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::trace::QueryTrace;

/// Sizing and gating for a [`FlightRecorder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity: the last `capacity` completed traces are kept.
    /// `0` disables the recorder entirely ([`FlightRecorder::record`]
    /// returns `None`).
    pub capacity: usize,
    /// Traces whose total wall time reaches this threshold are offered
    /// to the slow-query log.
    pub slow_threshold_ns: u64,
    /// Slow-log capacity (oldest entries are dropped first). `0`
    /// disables the slow log while keeping the ring.
    pub slow_capacity: usize,
    /// Minimum interval between slow-log captures; traces arriving
    /// faster are counted as suppressed, not stored. `0` captures
    /// every slow trace.
    pub slow_min_interval_ns: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 64,
            slow_threshold_ns: 100_000_000, // 100ms
            slow_capacity: 16,
            slow_min_interval_ns: 1_000_000_000, // 1s
        }
    }
}

/// A trace retained by the recorder, tagged with its exemplar id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Monotonically increasing id (starts at 1); per-plan statistics
    /// use it to link histogram tails back to a retained trace.
    pub id: u64,
    /// The completed trace.
    pub trace: QueryTrace,
}

struct SlowLog {
    entries: VecDeque<RecordedTrace>,
    last_capture: Option<Instant>,
}

/// Bounded retention of completed traces; see the module docs.
pub struct FlightRecorder {
    cfg: RecorderConfig,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<RecordedTrace>>,
    slow: Mutex<SlowLog>,
    slow_captured: AtomicU64,
    slow_suppressed: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with the given bounds.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            next_id: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cfg.capacity.min(1024))),
            slow: Mutex::new(SlowLog {
                entries: VecDeque::with_capacity(cfg.slow_capacity.min(1024)),
                last_capture: None,
            }),
            slow_captured: AtomicU64::new(0),
            slow_suppressed: AtomicU64::new(0),
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> RecorderConfig {
        self.cfg
    }

    /// Record a completed trace; returns its exemplar id, or `None`
    /// when the recorder is disabled (`capacity == 0`).
    pub fn record(&self, trace: &QueryTrace) -> Option<u64> {
        if self.cfg.capacity == 0 {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = RecordedTrace {
            id,
            trace: trace.clone(),
        };
        {
            let mut ring = self.ring.lock();
            if ring.len() >= self.cfg.capacity {
                ring.pop_front();
            }
            ring.push_back(entry.clone());
        }
        if self.cfg.slow_capacity > 0 && trace.total_ns >= self.cfg.slow_threshold_ns {
            self.offer_slow(entry);
        }
        Some(id)
    }

    fn offer_slow(&self, entry: RecordedTrace) {
        let mut slow = self.slow.lock();
        let rate_limited = match slow.last_capture {
            Some(last) => (last.elapsed().as_nanos() as u64) < self.cfg.slow_min_interval_ns,
            None => false,
        };
        if rate_limited {
            self.slow_suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slow.last_capture = Some(Instant::now());
        if slow.entries.len() >= self.cfg.slow_capacity {
            slow.entries.pop_front();
        }
        slow.entries.push_back(entry);
        self.slow_captured.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained traces, most recent first.
    pub fn recent(&self) -> Vec<RecordedTrace> {
        self.ring.lock().iter().rev().cloned().collect()
    }

    /// The slow-query log, most recent first.
    pub fn slow_queries(&self) -> Vec<RecordedTrace> {
        self.slow.lock().entries.iter().rev().cloned().collect()
    }

    /// Look up a retained trace by exemplar id (ring first, then the
    /// slow log, which retains ids longer under churn).
    pub fn get(&self, id: u64) -> Option<RecordedTrace> {
        if let Some(e) = self.ring.lock().iter().find(|e| e.id == id) {
            return Some(e.clone());
        }
        self.slow
            .lock()
            .entries
            .iter()
            .find(|e| e.id == id)
            .cloned()
    }

    /// Total traces ever recorded (== the last id handed out).
    pub fn recorded(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Slow traces captured into the log.
    pub fn slow_captured(&self) -> u64 {
        self.slow_captured.load(Ordering::Relaxed)
    }

    /// Slow traces suppressed by the rate limiter.
    pub fn slow_suppressed(&self) -> u64 {
        self.slow_suppressed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(total_ns: u64) -> QueryTrace {
        QueryTrace {
            op: "boolean",
            total_ns,
            ..QueryTrace::default()
        }
    }

    #[test]
    fn ring_keeps_the_last_capacity_traces() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 3,
            slow_capacity: 0,
            ..RecorderConfig::default()
        });
        for i in 1..=10u64 {
            assert_eq!(r.record(&trace(i)), Some(i));
        }
        let recent = r.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![10, 9, 8]
        );
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.get(10).unwrap().trace.total_ns, 10);
        assert!(r.get(1).is_none());
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 0,
            ..RecorderConfig::default()
        });
        assert_eq!(r.record(&trace(1)), None);
        assert!(r.recent().is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn slow_log_gates_on_threshold() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            slow_threshold_ns: 100,
            slow_capacity: 8,
            slow_min_interval_ns: 0,
        });
        r.record(&trace(99));
        r.record(&trace(100));
        r.record(&trace(5_000));
        let slow = r.slow_queries();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].trace.total_ns, 5_000);
        assert_eq!(r.slow_captured(), 2);
        assert_eq!(r.slow_suppressed(), 0);
    }

    #[test]
    fn slow_log_rate_limit_suppresses_bursts() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            slow_threshold_ns: 0,
            slow_capacity: 8,
            slow_min_interval_ns: u64::MAX,
        });
        for i in 0..50u64 {
            r.record(&trace(i + 1));
        }
        // Only the first capture lands inside an unbounded interval.
        assert_eq!(r.slow_queries().len(), 1);
        assert_eq!(r.slow_captured(), 1);
        assert_eq!(r.slow_suppressed(), 49);
    }
}
