//! Observability substrate for the hypertree serving stack.
//!
//! Three layers, all offline (no network, no I/O, strings only):
//!
//! - **Spans & traces** ([`trace`], [`phase`]): an opt-in per-request
//!   [`Tracer`] records wall time per lifecycle [`Phase`] plus row,
//!   byte, cache, and plan provenance, assembled into a [`QueryTrace`].
//!   With [`TraceConfig::Off`] every touch point is a single branch.
//! - **Metrics** ([`metrics`], [`registry`]): lock-free [`Counter`]s,
//!   [`Gauge`]s, and log₂-bucketed [`Histogram`]s behind a named,
//!   labeled [`Registry`].
//! - **Exporters** ([`export`]): a stable JSON snapshot, a Prometheus
//!   text renderer (plus a structural validator for CI), and the
//!   human-readable trace pretty-printer.
//! - **Diagnostics** ([`explain`], [`recorder`]): a structured
//!   [`PlanExplain`] with EXPLAIN / EXPLAIN ANALYZE renderers, and a
//!   bounded [`FlightRecorder`] retaining recent traces plus a
//!   rate-limited slow-query log.
//!
//! The crate deliberately has no dependency on the rest of the
//! workspace, so every layer — `core`, `relation`, `eval`, `service`,
//! `bench` — can thread it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod explain;
pub mod export;
pub mod metrics;
pub mod phase;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use explain::{ExplainNode, PlanExplain, EXPLAIN_SCHEMA};
pub use export::{validate_prometheus, Snapshot};
pub use metrics::{Counter, Gauge, Histogram};
pub use phase::Phase;
pub use recorder::{FlightRecorder, RecordedTrace, RecorderConfig};
pub use registry::Registry;
pub use trace::{
    IoTap, NodeRows, PlanShape, QueryTrace, Span, Stopwatch, TraceConfig, TraceOutcome, Tracer,
};
