//! The metrics registry: a named, labeled catalogue of counters,
//! gauges, and histograms, snapshotted for the exporters.
//!
//! Handles returned by the registry are `Arc`s to the hot-path
//! primitives in [`crate::metrics`]; the registry lock is taken only
//! at registration and scrape time, never on the record path.
//!
//! The registry never panics: a name registered twice with a
//! conflicting metric kind yields a fresh *detached* handle (usable,
//! but not exported) rather than a panic, keeping this crate eligible
//! for the panic-free request path.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::Snapshot;
use crate::metrics::{Counter, Gauge, Histogram};

/// Label set attached to a metric: `(key, value)` pairs.
pub type Labels = Vec<(&'static str, String)>;

/// The metric payload of a registry entry.
#[derive(Clone)]
pub enum Metric {
    /// A monotonically increasing counter.
    Counter(Arc<Counter>),
    /// A free-moving gauge.
    Gauge(Arc<Gauge>),
    /// A log₂-bucketed histogram.
    Histogram(Arc<Histogram>),
}

pub(crate) struct Entry {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) labels: Labels,
    pub(crate) metric: Metric,
}

/// A registry of named metrics.
///
/// Get-or-create semantics: asking for the same `(name, labels)` twice
/// returns clones of the same underlying handle, so call sites don't
/// need to coordinate initialisation order.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.iter().find(|e| e.name == name && e.labels == labels) {
            return e.metric.clone();
        }
        let metric = make();
        inner.push(Entry {
            name,
            help,
            labels,
            metric: metric.clone(),
        });
        metric
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, Vec::new())
    }

    /// Get or create a labeled counter. On a kind conflict (the name
    /// and labels already hold a non-counter) returns a detached
    /// counter that records but is not exported.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
    ) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => Arc::new(Counter::new()),
        }
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, Vec::new())
    }

    /// Get or create a labeled gauge (detached handle on kind
    /// conflict, as for [`Registry::counter_with`]).
    pub fn gauge_with(&self, name: &'static str, help: &'static str, labels: Labels) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Get or create an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, Vec::new())
    }

    /// Get or create a labeled histogram (detached handle on kind
    /// conflict, as for [`Registry::counter_with`]).
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Register an externally owned counter handle (e.g. a component's
    /// `static` counter) under `name`. If the slot already exists the
    /// existing registration wins and the call is a no-op.
    pub fn register_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        counter: Arc<Counter>,
    ) {
        self.get_or_insert(name, help, labels, || Metric::Counter(counter));
    }

    /// Scrape-time convenience: get-or-create the gauge and set it in
    /// one call, for values sampled from external state (cache sizes,
    /// LRU evictions) during a snapshot.
    pub fn set_gauge(&self, name: &'static str, help: &'static str, value: u64) {
        self.gauge(name, help).set(value);
    }

    /// Labeled variant of [`Registry::set_gauge`].
    pub fn set_gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        value: u64,
    ) {
        self.gauge_with(name, help, labels).set(value);
    }

    /// Drop every series whose label set carries `(key, value)`,
    /// returning how many were removed. This keeps label cardinality
    /// bounded for per-entity families (e.g. per-plan statistics):
    /// when the owning cache evicts an entity, its series leave the
    /// export too. Live handles held elsewhere keep working — they
    /// just become detached from the snapshot.
    pub fn remove_labeled(&self, key: &'static str, value: &str) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.len();
        inner.retain(|e| !e.labels.iter().any(|(k, v)| *k == key && v == value));
        before - inner.len()
    }

    /// Take a point-in-time snapshot of every registered metric,
    /// sorted by `(name, labels)` for stable export output.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::scrape(&self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("requests_total", "help");
        let b = r.counter("requests_total", "ignored on second call");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let boolean = r.counter_with("op_total", "h", vec![("op", "boolean".into())]);
        let count = r.counter_with("op_total", "h", vec![("op", "count".into())]);
        boolean.add(1);
        count.add(2);
        assert_eq!(boolean.get(), 1);
        assert_eq!(count.get(), 2);
    }

    #[test]
    fn kind_conflict_yields_detached_handle_not_panic() {
        let r = Registry::new();
        let _c = r.counter("x", "h");
        let g = r.gauge("x", "h");
        g.set(9);
        // The detached gauge works but the exported entry is still the
        // counter.
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"counter\""));
    }

    #[test]
    fn remove_labeled_drops_matching_series_only() {
        let r = Registry::new();
        r.counter_with("plan_requests_total", "h", vec![("plan", "q1".into())])
            .add(1);
        r.counter_with("plan_requests_total", "h", vec![("plan", "q2".into())])
            .add(2);
        let keep = r.counter("requests_total", "h");
        keep.add(9);
        assert_eq!(r.remove_labeled("plan", "q1"), 1);
        let json = r.snapshot().to_json();
        assert!(!json.contains("\"q1\""));
        assert!(json.contains("\"q2\""));
        assert!(json.contains("requests_total"));
        assert_eq!(r.remove_labeled("plan", "q1"), 0);
    }

    #[test]
    fn register_counter_is_first_wins() {
        let r = Registry::new();
        let mine = Arc::new(Counter::new());
        mine.add(5);
        r.register_counter("ext", "h", Vec::new(), mine.clone());
        let same = r.counter("ext", "h");
        assert_eq!(same.get(), 5);
        mine.add(1);
        assert_eq!(same.get(), 6);
    }
}
