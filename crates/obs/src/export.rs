//! Exporters: a stable JSON snapshot and a Prometheus text-format
//! renderer, both offline (strings only, no network, no allocation on
//! any hot path — scraping is the cold path by construction).

use std::fmt::Write as _;

use crate::metrics::{Histogram, HISTOGRAM_BUCKETS};
use crate::registry::{Entry, Labels, Metric};

/// Schema tag stamped into the JSON export; bump on breaking change.
pub const JSON_SCHEMA: &str = "obs-metrics/1";

/// Point-in-time value of one metric series.
///
/// The histogram variant inlines its fixed bucket array — snapshots are
/// scrape-time values, not hot-path state, so the size skew over the
/// scalar variants is fine.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Value {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram reading: per-bucket counts plus totals.
    Histogram {
        /// Per-bucket observation counts (bucket `i` = bit-length `i`).
        buckets: [u64; HISTOGRAM_BUCKETS],
        /// Total observation count.
        count: u64,
        /// Sum of all observations.
        sum: u64,
    },
}

/// One exported series: name, help, labels, and the sampled value.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric name (Prometheus-safe: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: &'static str,
    /// Help text for the `# HELP` line.
    pub help: &'static str,
    /// Label pairs, in registration order.
    pub labels: Labels,
    /// The sampled value.
    pub value: Value,
}

/// A sorted, self-contained snapshot of a [`crate::Registry`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    samples: Vec<Sample>,
}

impl Snapshot {
    pub(crate) fn scrape(entries: &[Entry]) -> Snapshot {
        let mut samples: Vec<Sample> = entries
            .iter()
            .map(|e| Sample {
                name: e.name,
                help: e.help,
                labels: e.labels.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => Value::Counter(c.get()),
                    Metric::Gauge(g) => Value::Gauge(g.get()),
                    Metric::Histogram(h) => Value::Histogram {
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect();
        samples.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        Snapshot { samples }
    }

    /// The sampled series, sorted by `(name, labels)`.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Render the snapshot as a stable JSON document (schema
    /// [`JSON_SCHEMA`]). Histograms additionally carry estimated
    /// p50/p90/p99 so dashboards need no client-side bucket math.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(JSON_SCHEMA));
        out.push_str("  \"metrics\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(out, "\"name\": {}", json_string(s.name));
            if !s.labels.is_empty() {
                out.push_str(", \"labels\": {");
                for (j, (k, v)) in s.labels.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", json_string(k), json_string(v));
                }
                out.push('}');
            }
            match &s.value {
                Value::Counter(v) => {
                    let _ = write!(out, ", \"type\": \"counter\", \"value\": {v}");
                }
                Value::Gauge(v) => {
                    let _ = write!(out, ", \"type\": \"gauge\", \"value\": {v}");
                }
                Value::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    let _ = write!(
                        out,
                        ", \"type\": \"histogram\", \"count\": {count}, \"sum\": {sum}"
                    );
                    let _ = write!(
                        out,
                        ", \"p50\": {}, \"p90\": {}, \"p99\": {}",
                        quantile_of(buckets, 0.50),
                        quantile_of(buckets, 0.90),
                        quantile_of(buckets, 0.99)
                    );
                    out.push_str(", \"buckets\": [");
                    let top = highest_nonzero(buckets);
                    for (j, b) in buckets.iter().take(top + 1).enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{}, {}]", Histogram::le_bound(j), b);
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if i + 1 < self.samples.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric name,
    /// histograms as cumulative `_bucket{le="..."}` series (trimmed
    /// past the highest non-empty bucket, always ending at `+Inf`)
    /// plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for s in &self.samples {
            if s.name != last_name {
                let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(s.help));
                let kind = match s.value {
                    Value::Counter(_) => "counter",
                    Value::Gauge(_) => "gauge",
                    Value::Histogram { .. } => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = s.name;
            }
            match &s.value {
                Value::Counter(v) | Value::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
                }
                Value::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    let top = highest_nonzero(buckets);
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().take(top + 1).enumerate() {
                        cum += b;
                        let le = Histogram::le_bound(i).to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            render_labels(&s.labels, Some(&le)),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        render_labels(&s.labels, Some("+Inf")),
                        count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        count
                    );
                }
            }
        }
        out
    }
}

fn quantile_of(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return 0;
    }
    let rank = ((q * n as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= rank {
            return Histogram::le_bound(i);
        }
    }
    u64::MAX
}

fn highest_nonzero(buckets: &[u64; HISTOGRAM_BUCKETS]) -> usize {
    buckets.iter().rposition(|&b| b != 0).unwrap_or(0)
}

/// Render a label set, optionally with a trailing `le` label (for
/// histogram bucket series). Empty sets render as the empty string.
fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote, and newline.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape help text per the Prometheus text format: backslash and
/// newline only (quotes are legal in help).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validate a Prometheus text-format document: every non-comment,
/// non-blank line must be `name[{labels}] value`, `# HELP`/`# TYPE`
/// lines must be well-formed, and each `TYPE` must precede its
/// samples. Returns the first problem found. This is a structural
/// lint for CI, not a full parser.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut typed: Vec<&str> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(body) = rest.strip_prefix("HELP ") {
                let mut it = body.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad HELP metric name {name:?}"));
                }
            } else if let Some(body) = rest.strip_prefix("TYPE ") {
                let mut it = body.split(' ');
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad TYPE metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: bad TYPE kind {kind:?}"));
                }
                typed.push(name);
            } else {
                return Err(format!("line {n}: comment is neither HELP nor TYPE"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: comment must start with '# '"));
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {n}: no value separator")),
        };
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {n}: bad sample value {value:?}"));
        }
        let name_part = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {n}: unterminated label set"));
                }
                validate_labels(&labels[..labels.len() - 1])
                    .map_err(|e| format!("line {n}: {e}"))?;
                name
            }
            None => series,
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {n}: bad metric name {name_part:?}"));
        }
        let base = name_part
            .strip_suffix("_bucket")
            .or_else(|| name_part.strip_suffix("_sum"))
            .or_else(|| name_part.strip_suffix("_count"))
            .unwrap_or(name_part);
        if !typed.contains(&name_part) && !typed.contains(&base) {
            return Err(format!(
                "line {n}: sample {name_part:?} has no preceding TYPE"
            ));
        }
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn validate_labels(body: &str) -> Result<(), String> {
    // Split on commas outside quotes; inside values only the three
    // escapes \\ \" \n are legal.
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !valid_metric_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".into());
        }
        rest = &rest[1..];
        let mut closed = false;
        let mut iter = rest.char_indices();
        while let Some((i, c)) = iter.next() {
            match c {
                '\\' => match iter.next() {
                    Some((_, '\\' | '"' | 'n')) => {}
                    _ => return Err("bad escape in label value".into()),
                },
                '"' => {
                    rest = &rest[i + 1..];
                    closed = true;
                    break;
                }
                _ => {}
            }
        }
        if !closed {
            return Err("unterminated label value".into());
        }
        if rest.starts_with(',') {
            rest = &rest[1..];
        } else if !rest.is_empty() {
            return Err("junk after label value".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("requests_total", "Total requests").add(42);
        r.counter_with(
            "op_total",
            "Per-op requests",
            vec![("op", "boolean".into())],
        )
        .add(7);
        r.counter_with("op_total", "Per-op requests", vec![("op", "count".into())])
            .add(3);
        r.gauge("plan_cache_len", "Live plan-cache entries").set(5);
        let h = r.histogram("request_latency_ns", "Request latency");
        h.record(100);
        h.record(100_000);
        r
    }

    #[test]
    fn prometheus_output_validates_and_is_stable() {
        let snap = sample_registry().snapshot();
        let text = snap.to_prometheus();
        validate_prometheus(&text).unwrap();
        // Sorted by name: op_total before plan_cache_len before
        // request_latency_ns before requests_total.
        let op = text.find("op_total{op=\"boolean\"} 7").unwrap();
        let op2 = text.find("op_total{op=\"count\"} 3").unwrap();
        let gauge = text.find("plan_cache_len 5").unwrap();
        assert!(op < op2 && op2 < gauge);
        // HELP/TYPE emitted once per name, before samples.
        assert_eq!(text.matches("# TYPE op_total counter").count(), 1);
        // Histogram renders cumulative buckets ending at +Inf.
        assert!(text.contains("request_latency_ns_bucket{le=\"127\"} 1"));
        assert!(text.contains("request_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("request_latency_ns_sum 100100"));
        assert!(text.contains("request_latency_ns_count 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("weird", "h", vec![("q", "a\"b\\c\nd".into())])
            .add(1);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains(r#"weird{q="a\"b\\c\nd"} 1"#));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn json_snapshot_is_stable_and_carries_quantiles() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"obs-metrics/1\""));
        assert!(json.contains("\"name\": \"requests_total\", \"type\": \"counter\", \"value\": 42"));
        assert!(json.contains("\"p50\": 127"));
        assert!(json.contains("\"count\": 2, \"sum\": 100100"));
        // Braces/brackets balance.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_prometheus("no_type_line 1").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{a=unquoted} 1").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{a=\"open} 1").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n").is_err());
        assert!(validate_prometheus("# TYPE x flavor\n").is_err());
        assert!(validate_prometheus("#comment\n").is_err());
        assert!(validate_prometheus(
            "# TYPE x counter\nx 1\n\n# HELP y h\n# TYPE y gauge\ny{l=\"v\"} 2.5"
        )
        .is_ok());
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b"), r#""a\"b""#);
        assert_eq!(json_string("a\\b"), r#""a\\b""#);
        assert_eq!(json_string("a\nb"), r#""a\nb""#);
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
    }
}
