//! Hot-path metric primitives: counters, gauges, and log₂-bucketed
//! histograms.
//!
//! All three are lock-free and allocation-free on the record path — a
//! [`Counter::incr`] or [`Histogram::record`] is a handful of relaxed
//! atomic adds. Aggregation (quantile estimation, snapshotting) happens
//! only at scrape time.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// `const`-constructible so components can own `static` counters that
/// are later registered with a [`crate::Registry`] by handle.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A new counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one; returns the *previous* value (useful for 1-in-N
    /// sampling decisions without a second atomic).
    #[inline]
    pub fn incr(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions (cache sizes,
/// in-flight requests, scrape-time snapshots of external state).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A new gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the gauge value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per possible bit-length of a `u64`
/// (0..=64), so bucket boundaries are `0, 1, 3, 7, …, 2^63-1, u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, row counts, …).
///
/// Bucket `i` counts observations whose bit-length is `i`, i.e. values
/// `v` with `2^(i-1) <= v < 2^i` (bucket 0 holds exactly the zeros).
/// The inclusive upper bound of bucket `i` is therefore `2^i - 1`
/// (see [`Histogram::le_bound`]). Recording is three relaxed atomic
/// adds; quantiles are estimated at scrape time from the cumulative
/// bucket counts, reporting each bucket's upper bound — a ≤ 2×
/// overestimate, which is the standard trade for allocation-free
/// hot-path recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A new, empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array element-by-element
        // via a const block (stable since 1.79).
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket that holds `v`: the bit-length of `v`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`: `2^i - 1` (saturating to
    /// `u64::MAX` for the last bucket).
    pub fn le_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow is acceptable for
    /// the rates this is used at; Prometheus sums are floats anyway).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, in bucket-index order.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) as the upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q * n)`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q=0 maps to rank 1.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::le_bound(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_incr_returns_previous_value() {
        let c = Counter::new();
        assert_eq!(c.incr(), 0);
        assert_eq!(c.incr(), 1);
        c.add(10);
        assert_eq!(c.get(), 12);
        c.add(0);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_set_overwrites() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every value lands in the bucket whose le_bound covers it and
        // whose predecessor's bound does not.
        for v in [0u64, 1, 2, 3, 5, 100, 4096, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::le_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > Histogram::le_bound(i - 1), "v={v} i={i}");
            }
        }
        assert_eq!(Histogram::le_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        // 90 observations of ~100ns (bucket 7, bound 127) and 10 of
        // ~1000ns (bucket 10, bound 1023).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 1000);
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.90), 127);
        assert_eq!(h.quantile(0.91), 1023);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.0), 127);
    }

    #[test]
    fn quantile_of_zeros_is_zero() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(0);
        }
        assert_eq!(h.quantile(0.99), 0);
    }
}
