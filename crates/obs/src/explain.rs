//! EXPLAIN / EXPLAIN ANALYZE: a structured, renderable description of
//! a prepared plan.
//!
//! [`PlanExplain`] is plain data assembled by the serving layer from a
//! prepared query: decomposition shape, width, and provenance; the
//! join-tree topology with per-node variable bags and λ edge covers;
//! cache hit/miss lineage; and the shard configuration the plan would
//! run with. It renders as a stable JSON document (schema
//! [`EXPLAIN_SCHEMA`]) or as a tree-style text form, and — given a
//! real execution's [`QueryTrace`] — as an EXPLAIN ANALYZE tree
//! annotated with per-node row counts and per-phase wall time.

use std::fmt::Write as _;

use crate::export::json_string;
use crate::phase::Phase;
use crate::trace::{fmt_ns, QueryTrace};

/// Schema tag stamped into the EXPLAIN JSON form; bump on breaking
/// change.
pub const EXPLAIN_SCHEMA: &str = "obs-explain/1";

/// One node of the plan tree: a variable bag (χ for hypertrees, the
/// atom's variables for join trees) and the edge cover that supplies
/// it (λ for hypertrees, the single atom for join trees).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainNode {
    /// Node id — the node's index in the plan's rooted tree, aligned
    /// with [`QueryTrace::node_rows`] indices.
    pub id: usize,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Depth in the tree (root = 0); drives text-tree indentation.
    pub depth: usize,
    /// Variable bag at this node.
    pub bag: Vec<String>,
    /// Covering hyperedges (atom names) at this node.
    pub cover: Vec<String>,
}

/// A structured EXPLAIN of one prepared plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanExplain {
    /// The query text the plan was prepared from.
    pub query: String,
    /// Canonical plan key (variables renamed positionally), the same
    /// key the plan cache and per-plan statistics use.
    pub plan_key: String,
    /// Plan shape: `join-tree` or `hypertree`.
    pub kind: &'static str,
    /// Plan width (1 for join trees, hypertree width otherwise).
    pub width: u64,
    /// Decomposition provenance: `acyclic` for join trees; for
    /// hypertrees `exact`, `heuristic-optimal`, or `heuristic` when
    /// this prepare ran the decomposer, `cached` when the
    /// decomposition came from the decomposition cache.
    pub provenance: &'static str,
    /// Whether the plan cache supplied the plan (`None` if unknown).
    pub plan_cache_hit: Option<bool>,
    /// Whether the decomposition cache hit when the plan was prepared
    /// (`None` for join trees).
    pub decomp_cache_hit: Option<bool>,
    /// Configured intra-query shard count the plan would run with.
    pub shards: u64,
    /// Minimum relation size before sharding engages.
    pub shard_min_rows: u64,
    /// The plan tree in pre-order (parents precede children).
    pub nodes: Vec<ExplainNode>,
}

impl PlanExplain {
    /// Tree-style text rendering (EXPLAIN).
    pub fn render(&self) -> String {
        self.render_inner(None)
    }

    /// Tree-style text rendering annotated with a real execution's
    /// trace (EXPLAIN ANALYZE): per-node rows in/out and survivor
    /// counts, per-phase wall time, and totals.
    pub fn render_analyzed(&self, trace: &QueryTrace) -> String {
        self.render_inner(Some(trace))
    }

    fn render_inner(&self, trace: Option<&QueryTrace>) -> String {
        let mut out = String::new();
        let verb = if trace.is_some() {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        };
        let _ = writeln!(out, "{verb} {}", self.query);
        let _ = writeln!(
            out,
            "  plan: kind={} width={} provenance={}",
            self.kind, self.width, self.provenance
        );
        let cache = |v: Option<bool>| match v {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "-",
        };
        let _ = writeln!(
            out,
            "  cache: plan={} decomp={}",
            cache(self.plan_cache_hit),
            cache(self.decomp_cache_hit)
        );
        let _ = writeln!(
            out,
            "  shards: {} (min rows {})",
            self.shards, self.shard_min_rows
        );
        out.push_str("  tree:\n");
        for n in &self.nodes {
            let _ = write!(out, "  {}", "  ".repeat(n.depth + 1));
            let _ = write!(
                out,
                "[{}] χ{{{}}} λ{{{}}}",
                n.id,
                n.bag.join(","),
                n.cover.join(",")
            );
            if let Some(t) = trace {
                if let Some(nr) = t.node_rows.get(n.id) {
                    let _ = write!(
                        out,
                        "  rows {}→{} scanned={}",
                        nr.rows_in, nr.rows_out, nr.rows_scanned
                    );
                }
            }
            out.push('\n');
        }
        if let Some(t) = trace {
            out.push_str("  phases:\n");
            for p in Phase::ALL {
                let ns = t.phase(p);
                if ns > 0 {
                    let _ = writeln!(out, "    {:<10} {:>10}", p.as_str(), fmt_ns(ns));
                }
            }
            let _ = writeln!(
                out,
                "  actual: total={} rows scanned={} emitted={} bytes={} steps={}{}",
                fmt_ns(t.total_ns),
                t.rows_scanned,
                t.rows_emitted,
                t.bytes_charged,
                t.steps_charged,
                if t.truncated { " TRUNCATED" } else { "" }
            );
        }
        out
    }

    /// Stable JSON form (schema [`EXPLAIN_SCHEMA`]).
    pub fn to_json(&self) -> String {
        self.json_inner(None)
    }

    /// JSON form with an `analyze` section and per-node row counts
    /// from a real execution's trace.
    pub fn to_json_analyzed(&self, trace: &QueryTrace) -> String {
        self.json_inner(Some(trace))
    }

    fn json_inner(&self, trace: Option<&QueryTrace>) -> String {
        let opt_bool = |v: Option<bool>| match v {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        };
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(EXPLAIN_SCHEMA));
        let _ = writeln!(out, "  \"query\": {},", json_string(&self.query));
        let _ = writeln!(out, "  \"plan_key\": {},", json_string(&self.plan_key));
        let _ = writeln!(out, "  \"kind\": {},", json_string(self.kind));
        let _ = writeln!(out, "  \"width\": {},", self.width);
        let _ = writeln!(out, "  \"provenance\": {},", json_string(self.provenance));
        let _ = writeln!(
            out,
            "  \"plan_cache_hit\": {},",
            opt_bool(self.plan_cache_hit)
        );
        let _ = writeln!(
            out,
            "  \"decomp_cache_hit\": {},",
            opt_bool(self.decomp_cache_hit)
        );
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"shard_min_rows\": {},", self.shard_min_rows);
        out.push_str("  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(out, "    {{\"id\": {}, \"parent\": ", n.id);
            match n.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ", \"depth\": {}, \"bag\": [", n.depth);
            for (j, v) in n.bag.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(v));
            }
            out.push_str("], \"cover\": [");
            for (j, e) in n.cover.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(e));
            }
            out.push(']');
            if let Some(t) = trace {
                if let Some(nr) = t.node_rows.get(n.id) {
                    let _ = write!(
                        out,
                        ", \"rows\": {{\"in\": {}, \"out\": {}, \"scanned\": {}}}",
                        nr.rows_in, nr.rows_out, nr.rows_scanned
                    );
                }
            }
            out.push('}');
            if i + 1 < self.nodes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        if let Some(t) = trace {
            out.push_str(",\n  \"analyze\": {");
            let _ = write!(
                out,
                "\"op\": {}, \"total_ns\": {}, \"rows_scanned\": {}, \"rows_emitted\": {}, \
                 \"bytes_charged\": {}, \"steps_charged\": {}, \"truncated\": {}",
                json_string(t.op),
                t.total_ns,
                t.rows_scanned,
                t.rows_emitted,
                t.bytes_charged,
                t.steps_charged,
                t.truncated
            );
            out.push_str(", \"phases\": {");
            let mut first = true;
            for p in Phase::ALL {
                let ns = t.phase(p);
                if ns > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(out, "{}: {}", json_string(p.as_str()), ns);
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NodeRows;

    fn sample() -> PlanExplain {
        PlanExplain {
            query: "ans :- p0(A,B), p0(B,C), p0(C,A).".into(),
            plan_key: "ans:-p0(#0,#1),p0(#1,#2),p0(#2,#0)".into(),
            kind: "hypertree",
            width: 2,
            provenance: "heuristic",
            plan_cache_hit: Some(false),
            decomp_cache_hit: Some(false),
            shards: 1,
            shard_min_rows: 0,
            nodes: vec![
                ExplainNode {
                    id: 0,
                    parent: None,
                    depth: 0,
                    bag: vec!["A".into(), "B".into(), "C".into()],
                    cover: vec!["p0".into(), "p0".into()],
                },
                ExplainNode {
                    id: 1,
                    parent: Some(0),
                    depth: 1,
                    bag: vec!["C".into(), "A".into()],
                    cover: vec!["p0".into()],
                },
            ],
        }
    }

    fn sample_trace() -> QueryTrace {
        let mut t = QueryTrace {
            op: "enumerate",
            total_ns: 12_345,
            rows_scanned: 40,
            rows_emitted: 3,
            ..QueryTrace::default()
        };
        t.phase_ns[Phase::Reduce.index()] = 5_000;
        t.node_rows = vec![
            NodeRows {
                rows_in: 9,
                rows_out: 3,
                rows_scanned: 30,
            },
            NodeRows {
                rows_in: 3,
                rows_out: 3,
                rows_scanned: 10,
            },
        ];
        t
    }

    #[test]
    fn render_shows_topology_and_provenance() {
        let text = sample().render();
        assert!(text.starts_with("EXPLAIN ans"));
        assert!(text.contains("kind=hypertree width=2 provenance=heuristic"));
        assert!(text.contains("[0] χ{A,B,C} λ{p0,p0}"));
        assert!(text.contains("[1] χ{C,A} λ{p0}"));
        assert!(text.contains("cache: plan=miss decomp=miss"));
        // Child indented one level deeper than root.
        let root_at = text.lines().find(|l| l.contains("[0]")).unwrap();
        let child_at = text.lines().find(|l| l.contains("[1]")).unwrap();
        let indent = |l: &str| l.chars().take_while(|c| *c == ' ').count();
        assert!(indent(child_at) > indent(root_at));
    }

    #[test]
    fn render_analyzed_annotates_nodes_and_phases() {
        let text = sample().render_analyzed(&sample_trace());
        assert!(text.starts_with("EXPLAIN ANALYZE"));
        assert!(text.contains("rows 9→3 scanned=30"));
        assert!(text.contains("reduce"));
        assert!(text.contains("actual: total="));
    }

    #[test]
    fn json_forms_are_balanced_and_tagged() {
        let ex = sample();
        for json in [ex.to_json(), ex.to_json_analyzed(&sample_trace())] {
            assert!(json.contains("\"schema\": \"obs-explain/1\""));
            for (open, close) in [('{', '}'), ('[', ']')] {
                assert_eq!(
                    json.matches(open).count(),
                    json.matches(close).count(),
                    "unbalanced {open}{close}"
                );
            }
        }
        let analyzed = ex.to_json_analyzed(&sample_trace());
        assert!(analyzed.contains("\"analyze\": {"));
        assert!(analyzed.contains("\"rows\": {\"in\": 9, \"out\": 3, \"scanned\": 30}"));
        assert!(!ex.to_json().contains("\"analyze\""));
    }
}
