//! The query-lifecycle phase taxonomy.
//!
//! Every span recorded by a [`crate::Tracer`] is attributed to exactly
//! one of these phases. The taxonomy follows the serving pipeline of the
//! paper's evaluation algorithm as it is deployed here: a request is
//! parsed, looked up in the plan cache, (on a miss) decomposed and
//! planned, then evaluated through the Yannakakis pipeline — semijoin
//! reduction, output join, or the counting DP.
//!
//! Phases are *not* mutually exclusive in wall-clock terms: `enumerate`
//! is an operation-level span that contains the `reduce` and `join`
//! work of the same request (see each variant's docs). Consumers that
//! want disjoint accounting should treat `enumerate` as a container.

/// One phase of the query lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Parsing the request text into a conjunctive query.
    Parse,
    /// Rendering the α-invariant plan key and probing the plan cache.
    PlanCache,
    /// Computing a hypertree/GHD for a cyclic query (plan-cache **and**
    /// decomposition-cache miss path only).
    Decompose,
    /// The rest of preparation: acyclicity test, join-tree or
    /// decomposition-backed strategy construction. Contains `decompose`.
    Plan,
    /// Semijoin sweeps (Yannakakis full reduction) plus the Lemma 4.6
    /// node-relation joins for decomposition-backed plans.
    Reduce,
    /// The output-producing join/projection phase of an enumeration.
    Join,
    /// Whole-operation span of an enumeration request: binding, the
    /// `reduce` sweeps, and the output `join` all nest inside it.
    Enumerate,
    /// The counting dynamic program over the (reduced) join tree.
    Count,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 8;

    /// Every phase, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Parse,
        Phase::PlanCache,
        Phase::Decompose,
        Phase::Plan,
        Phase::Reduce,
        Phase::Join,
        Phase::Enumerate,
        Phase::Count,
    ];

    /// The stable snake_case name used by exporters and the bench
    /// schema (`parse`, `plan_cache`, `decompose`, `plan`, `reduce`,
    /// `join`, `enumerate`, `count`).
    pub const fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::PlanCache => "plan_cache",
            Phase::Decompose => "decompose",
            Phase::Plan => "plan",
            Phase::Reduce => "reduce",
            Phase::Join => "join",
            Phase::Enumerate => "enumerate",
            Phase::Count => "count",
        }
    }

    /// The phase's index into [`Phase::ALL`] (and into per-phase
    /// accumulator arrays).
    pub const fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::PlanCache => 1,
            Phase::Decompose => 2,
            Phase::Plan => 3,
            Phase::Reduce => 4,
            Phase::Join => 5,
            Phase::Enumerate => 6,
            Phase::Count => 7,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order_and_names_are_unique() {
        let mut names = Vec::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            names.push(p.as_str());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }
}
