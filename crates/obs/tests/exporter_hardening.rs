//! Exporter hardening: the JSON and Prometheus renderers under the
//! inputs a serving layer actually throws at them — an empty registry,
//! label values carrying query text (quotes, backslashes, newlines),
//! kind conflicts, and the full set of per-plan statistics families.

use obs::export::JSON_SCHEMA;
use obs::{validate_prometheus, Registry};

#[test]
fn empty_registry_exports_cleanly() {
    let r = Registry::new();
    let snap = r.snapshot();
    let prom = snap.to_prometheus();
    validate_prometheus(&prom).expect("empty export is well-formed");
    let json = snap.to_json();
    assert!(json.contains(JSON_SCHEMA));
}

#[test]
fn hostile_label_values_escape_and_validate() {
    let r = Registry::new();
    // Plan keys are query text: quotes, backslashes, and (defensively)
    // newlines must all survive the trip through the exporter.
    for (i, key) in [
        "ans(0,1):-r(0,1),s(1,0).",
        "quote\"inside",
        "back\\slash",
        "new\nline",
    ]
    .iter()
    .enumerate()
    {
        r.counter_with(
            "plan_requests_total",
            "requests",
            vec![("plan", key.to_string())],
        )
        .add(i as u64 + 1);
    }
    let prom = r.snapshot().to_prometheus();
    validate_prometheus(&prom).expect("escaped labels validate");
    // The raw control characters never appear inside a label value.
    assert!(prom.contains("\\\""), "quote escaped: {prom}");
    assert!(prom.contains("\\\\"), "backslash escaped: {prom}");
    assert!(prom.contains("\\n"), "newline escaped: {prom}");
    for line in prom.lines() {
        assert!(!line.contains('\r'), "no raw CR in {line:?}");
    }
    let json = r.snapshot().to_json();
    assert!(json.contains("plan_requests_total"));
    assert!(
        !json.contains('\n') || !json.contains("new\nline"),
        "newline escaped in JSON"
    );
}

#[test]
fn kind_conflicts_keep_the_export_well_formed() {
    let r = Registry::new();
    r.counter("mixed_up", "first registration wins").add(7);
    // Conflicting re-registrations hand back detached (usable,
    // unexported) handles instead of panicking or corrupting the
    // export.
    let g = r.gauge("mixed_up", "conflicting gauge");
    g.set(99);
    let h = r.histogram("mixed_up", "conflicting histogram");
    h.record(123);
    let prom = r.snapshot().to_prometheus();
    validate_prometheus(&prom).expect("conflicted registry still validates");
    assert!(prom.contains("mixed_up 7"), "counter survives: {prom}");
    assert!(!prom.contains("99"), "detached gauge not exported: {prom}");
}

#[test]
fn per_plan_statistic_families_validate_end_to_end() {
    // The exact shape the plan cache exports: counters, a histogram,
    // and gauges, all sharing a "plan" label, over several plans.
    let r = Registry::new();
    for key in ["ans:-p0(A,B),p0(B,A).", "ans(X):-p1(X)."] {
        let labels = || vec![("plan", key.to_string())];
        r.counter_with("plan_requests_total", "requests", labels())
            .add(4);
        r.histogram_with("plan_request_latency_ns", "latency", labels())
            .record(1_500);
        r.counter_with("plan_rows_scanned_total", "rows", labels())
            .add(12);
        r.counter_with("plan_budget_trips_total", "trips", labels());
        r.gauge_with("plan_slowest_ns", "slowest", labels())
            .set(1_500);
        r.gauge_with("plan_slowest_trace_id", "exemplar", labels())
            .set(3);
    }
    let prom = r.snapshot().to_prometheus();
    validate_prometheus(&prom).expect("per-plan families validate");
    assert!(prom.contains("plan_request_latency_ns_bucket"));
    assert!(prom.contains("plan_request_latency_ns_count"));
    assert!(prom.contains("plan_slowest_trace_id"));

    // Evicting one plan's series removes the whole family for that key
    // and the export stays well-formed.
    let removed = r.remove_labeled("plan", "ans(X):-p1(X).");
    assert_eq!(removed, 6);
    let prom = r.snapshot().to_prometheus();
    validate_prometheus(&prom).expect("post-eviction export validates");
    assert!(!prom.contains("p1(X)"));
    assert!(prom.contains("plan_requests_total"));
}
