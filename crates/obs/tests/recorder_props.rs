//! Flight-recorder bounds, property-tested, plus a concurrency chaos
//! batch for the slow-log rate limiter: however many traces arrive,
//! from however many threads, the ring and the slow log never exceed
//! their configured capacities and the capture/suppress accounting
//! stays exact.

use obs::{FlightRecorder, QueryTrace, RecorderConfig};
use proptest::prelude::*;

fn trace(total_ns: u64) -> QueryTrace {
    QueryTrace {
        op: "boolean",
        total_ns,
        ..QueryTrace::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any configuration and any stream of trace durations, the
    /// recorder's bounds and ordering invariants hold.
    #[test]
    fn recorder_bounds_hold(
        seed in 0u64..u64::MAX / 2,
        capacity in 0usize..8,
        slow_capacity in 0usize..4,
        threshold in 0u64..2_000,
    ) {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity,
            slow_threshold_ns: threshold,
            slow_capacity,
            slow_min_interval_ns: 0, // capture every slow trace
        });
        let mut x = seed;
        let mut sent = 0u64;
        let mut slow_sent = 0u64;
        for _ in 0..40 {
            // Splitmix-style scramble: deterministic per seed.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let total = x % 4_000;
            let id = rec.record(&trace(total));
            if capacity == 0 {
                prop_assert_eq!(id, None);
                continue;
            }
            sent += 1;
            prop_assert_eq!(id, Some(sent), "ids are dense from 1");
            if slow_capacity > 0 && total >= threshold {
                slow_sent += 1;
            }
        }
        prop_assert_eq!(rec.recorded(), sent);

        let recent = rec.recent();
        prop_assert_eq!(recent.len() as u64, sent.min(capacity as u64));
        prop_assert!(
            recent.windows(2).all(|w| w[0].id > w[1].id),
            "ring is newest-first"
        );
        for e in &recent {
            let found = rec.get(e.id);
            prop_assert_eq!(found.as_ref(), Some(e), "ids round-trip");
        }

        let slow = rec.slow_queries();
        prop_assert!(slow.len() <= slow_capacity);
        prop_assert_eq!(slow.len() as u64, slow_sent.min(slow_capacity as u64));
        prop_assert!(slow.iter().all(|e| e.trace.total_ns >= threshold));
        prop_assert_eq!(rec.slow_captured(), slow_sent, "interval 0 captures all");
        prop_assert_eq!(rec.slow_suppressed(), 0u64);
    }
}

#[test]
fn rate_limiter_accounts_exactly_under_concurrent_hammering() {
    // Chaos batch: eight threads race 200 slow traces each into a
    // recorder whose rate limiter admits only the very first capture
    // (unbounded minimum interval). Whatever the interleaving, the
    // accounting must balance to the trace count and the log must hold
    // exactly the one capture.
    let rec = FlightRecorder::new(RecorderConfig {
        capacity: 16,
        slow_threshold_ns: 0,
        slow_capacity: 8,
        slow_min_interval_ns: u64::MAX,
    });
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let rec = &rec;
            s.spawn(move || {
                for i in 0..200u64 {
                    rec.record(&trace(t * 1_000 + i + 1));
                }
            });
        }
    });
    assert_eq!(rec.recorded(), 1_600);
    assert_eq!(rec.slow_captured(), 1);
    assert_eq!(rec.slow_suppressed(), 1_599);
    assert_eq!(rec.slow_queries().len(), 1);
    let recent = rec.recent();
    assert_eq!(recent.len(), 16);
    assert!(recent.windows(2).all(|w| w[0].id > w[1].id));
}
