//! Property tests for the query front end: parser/printer round-trips and
//! query↔hypergraph consistency on randomly generated queries.

use cq::{canonical_query, parse_query, ConjunctiveQuery, QueryBuilder, Term};
use proptest::prelude::*;

/// Strategy: a random Boolean query with ≤ `max_vars` variables and
/// 1..=`max_atoms` atoms over small arities, built through the API.
fn arb_query(max_vars: usize, max_atoms: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = proptest::collection::vec(0..max_vars, 1..=3);
    proptest::collection::vec(atom, 1..=max_atoms).prop_map(|atoms| {
        let mut b = QueryBuilder::default();
        for (i, vars) in atoms.iter().enumerate() {
            let terms: Vec<Term> = vars
                .iter()
                .map(|&v| Term::Var(b.var(&format!("V{v}"))))
                .collect();
            b.atom(format!("p{i}"), terms);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display → parse is the identity on generated queries.
    #[test]
    fn parser_roundtrip(q in arb_query(6, 6)) {
        let text = q.to_string();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(&q, &reparsed, "{}", text);
    }

    /// The query hypergraph mirrors atoms exactly: one edge per atom with
    /// the atom's distinct variables.
    #[test]
    fn hypergraph_mirrors_atoms(q in arb_query(6, 6)) {
        let h = q.hypergraph();
        prop_assert_eq!(h.num_edges(), q.atoms().len());
        prop_assert_eq!(h.num_vertices(), q.num_vars());
        for i in 0..q.atoms().len() {
            prop_assert_eq!(
                h.edge_vertices(hypergraph::EdgeId(i as u32)),
                &q.atom_vars(i)
            );
        }
    }

    /// canonical_query ∘ hypergraph preserves structure (Theorem A.3's
    /// underlying isomorphism).
    #[test]
    fn canonical_query_roundtrip(q in arb_query(5, 5)) {
        let h = q.hypergraph();
        let canon = canonical_query(&h);
        let h2 = canon.hypergraph();
        prop_assert_eq!(h.num_vertices(), h2.num_vertices());
        prop_assert_eq!(h.num_edges(), h2.num_edges());
        for e in h.edges() {
            prop_assert_eq!(h.edge_vertices(e), h2.edge_vertices(e));
        }
    }

    /// Constants survive the round trip too.
    #[test]
    fn constants_roundtrip(c in 0u64..1000) {
        let text = format!("ans(X) :- r(X, {c}), s({c}).");
        let q = parse_query(&text).unwrap();
        prop_assert_eq!(q.atom(0).terms[1], Term::Const(c));
        let q2 = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q, q2);
    }
}
