//! Conjunctive queries as datalog rules (Section 2.1 of the paper).
//!
//! A conjunctive query `Q: ans(u) ← r1(u1) ∧ … ∧ rn(un)` is stored with its
//! variables interned: variable `i` of the query is vertex `i` of the query
//! hypergraph `H(Q)`, so decompositions computed on the hypergraph can be
//! read back against the query without translation tables.

use hypergraph::{Hypergraph, Ix, VertexId, VertexSet};
use std::fmt;

/// A term: an interned variable or an integer constant.
///
/// The paper restricts attention to constant-free Boolean queries; constants
/// are supported end-to-end here because the evaluation engine handles them
/// with a selection, but the decomposition theory only ever sees `var(A)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable (indexes the query's variable table).
    Var(VertexId),
    /// An integer constant.
    Const(u64),
}

/// An atom `r(t1, …, tk)` in the body of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub predicate: String,
    /// Argument terms, in relation-schema order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The distinct variables of the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }
}

/// A conjunctive query: interned variables, a head, and a body of atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    var_names: Vec<String>,
    head_name: String,
    head: Vec<Term>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Start building a query (head defaults to the Boolean head `ans`).
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Number of interned variables, `|var(Q)|`.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VertexId) -> &str {
        &self.var_names[v.index()]
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VertexId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(VertexId::new)
    }

    /// The atoms of the body, `atoms(Q)`.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The i-th atom of the body.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// Head predicate name (`ans` by convention).
    pub fn head_name(&self) -> &str {
        &self.head_name
    }

    /// Head terms.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The distinct head variables in first-occurrence order (the output
    /// schema of a non-Boolean query).
    pub fn head_vars(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        for t in &self.head {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// `true` iff the head is variable-free (a Boolean conjunctive query).
    pub fn is_boolean(&self) -> bool {
        self.head_vars().is_empty()
    }

    /// `var(A)` for the i-th atom, as a vertex set over `var(Q)`.
    pub fn atom_vars(&self, i: usize) -> VertexSet {
        let mut s = VertexSet::empty(self.num_vars());
        for t in &self.atoms[i].terms {
            if let Term::Var(v) = t {
                s.insert(*v);
            }
        }
        s
    }

    /// The query hypergraph `H(Q)` (§2.1): vertices are the variables of
    /// `Q`, and every atom `A` contributes the hyperedge `var(A)`.
    /// Vertex `i` of the hypergraph is variable `i` of the query, and edge
    /// `j` is atom `j`.
    pub fn hypergraph(&self) -> Hypergraph {
        let mut b = Hypergraph::builder();
        for name in &self.var_names {
            b.add_vertex(name.clone());
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            let vars = atom.variables();
            // Disambiguate repeated predicate names so edges stay addressable.
            let count_before = self.atoms[..i]
                .iter()
                .filter(|a| a.predicate == atom.predicate)
                .count();
            let name = if count_before == 0
                && self.atoms[i + 1..]
                    .iter()
                    .all(|a| a.predicate != atom.predicate)
            {
                atom.predicate.clone()
            } else {
                format!("{}#{}", atom.predicate, count_before)
            };
            b.add_edge(name, &vars);
        }
        b.build()
    }

    /// Render a single atom.
    pub fn display_atom(&self, i: usize) -> String {
        self.render_atom(&self.atoms[i])
    }

    fn render_atom(&self, atom: &Atom) -> String {
        if atom.terms.is_empty() {
            return atom.predicate.clone();
        }
        let args: Vec<String> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => self.var_name(*v).to_string(),
                Term::Const(c) => c.to_string(),
            })
            .collect();
        format!("{}({})", atom.predicate, args.join(","))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head_atom = Atom {
            predicate: self.head_name.clone(),
            terms: self.head.clone(),
        };
        write!(f, "{} :- ", self.render_atom(&head_atom))?;
        let body: Vec<String> = self.atoms.iter().map(|a| self.render_atom(a)).collect();
        write!(f, "{}.", body.join(", "))
    }
}

/// Incremental builder for [`ConjunctiveQuery`].
#[derive(Default)]
pub struct QueryBuilder {
    var_names: Vec<String>,
    head_name: Option<String>,
    head: Vec<Term>,
    atoms: Vec<Atom>,
}

impl QueryBuilder {
    /// Intern a variable by name, returning its id.
    pub fn var(&mut self, name: &str) -> VertexId {
        match self.var_names.iter().position(|n| n == name) {
            Some(i) => VertexId::new(i),
            None => {
                self.var_names.push(name.to_string());
                VertexId::new(self.var_names.len() - 1)
            }
        }
    }

    /// Add a body atom with explicit terms.
    pub fn atom(&mut self, predicate: impl Into<String>, terms: Vec<Term>) -> &mut Self {
        self.atoms.push(Atom {
            predicate: predicate.into(),
            terms,
        });
        self
    }

    /// Add a body atom whose arguments are the named variables.
    pub fn atom_vars(&mut self, predicate: impl Into<String>, vars: &[&str]) -> &mut Self {
        let terms = vars.iter().map(|v| Term::Var(self.var(v))).collect();
        self.atom(predicate, terms)
    }

    /// Set the head to `name(vars…)`. Without a call, the head is the
    /// propositional `ans` (a Boolean query).
    pub fn head(&mut self, name: impl Into<String>, vars: &[&str]) -> &mut Self {
        self.head_name = Some(name.into());
        self.head = vars.iter().map(|v| Term::Var(self.var(v))).collect();
        self
    }

    /// Set the head from already-built terms (used by the parser).
    pub fn head_raw(&mut self, name: impl Into<String>, terms: Vec<Term>) -> &mut Self {
        self.head_name = Some(name.into());
        self.head = terms;
        self
    }

    /// Finish building, reporting unsafe queries (a head variable that does
    /// not occur in the body) as an error.
    pub fn try_build(&mut self) -> Result<ConjunctiveQuery, String> {
        let q = ConjunctiveQuery {
            var_names: std::mem::take(&mut self.var_names),
            head_name: self.head_name.take().unwrap_or_else(|| "ans".to_string()),
            head: std::mem::take(&mut self.head),
            atoms: std::mem::take(&mut self.atoms),
        };
        for v in q.head_vars() {
            let occurs = (0..q.atoms.len()).any(|i| q.atom_vars(i).contains(v));
            if !occurs {
                return Err(format!(
                    "unsafe query: head variable {} not in the body",
                    q.var_name(v)
                ));
            }
        }
        Ok(q)
    }

    /// Finish building. Panics on unsafe queries; see [`Self::try_build`].
    pub fn build(&mut self) -> ConjunctiveQuery {
        match self.try_build() {
            Ok(q) => q,
            // archlint::allow(panic-free-request-path, reason = "documented panicking constructor for tests/examples; try_build is the typed surface and the parser only uses it")
            Err(msg) => panic!("{msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> ConjunctiveQuery {
        let mut b = ConjunctiveQuery::builder();
        b.atom_vars("enrolled", &["S", "C", "R"]);
        b.atom_vars("teaches", &["P", "C", "A"]);
        b.atom_vars("parent", &["P", "S"]);
        b.build()
    }

    #[test]
    fn builds_and_displays_q1() {
        let q = q1();
        assert_eq!(q.num_vars(), 5);
        assert!(q.is_boolean());
        assert_eq!(
            q.to_string(),
            "ans :- enrolled(S,C,R), teaches(P,C,A), parent(P,S)."
        );
        assert_eq!(q.display_atom(2), "parent(P,S)");
    }

    #[test]
    fn variable_interning_is_shared() {
        let q = q1();
        let s = q.var_by_name("S").unwrap();
        assert!(q.atom_vars(0).contains(s));
        assert!(q.atom_vars(2).contains(s));
        assert!(!q.atom_vars(1).contains(s));
        assert_eq!(q.var_name(s), "S");
    }

    #[test]
    fn hypergraph_mirrors_query() {
        let q = q1();
        let h = q.hypergraph();
        assert_eq!(h.num_vertices(), q.num_vars());
        assert_eq!(h.num_edges(), q.atoms().len());
        for i in 0..q.atoms().len() {
            assert_eq!(h.edge_vertices(hypergraph::EdgeId::new(i)), &q.atom_vars(i));
        }
        assert_eq!(h.vertex_name(q.var_by_name("P").unwrap()), "P");
    }

    #[test]
    fn non_boolean_head() {
        let mut b = ConjunctiveQuery::builder();
        b.atom_vars("r", &["X", "Y"]);
        b.head("ans", &["X"]);
        let q = b.build();
        assert!(!q.is_boolean());
        assert_eq!(q.head_vars(), vec![q.var_by_name("X").unwrap()]);
        assert_eq!(q.to_string(), "ans(X) :- r(X,Y).");
    }

    #[test]
    #[should_panic(expected = "unsafe query")]
    fn unsafe_head_panics() {
        let mut b = ConjunctiveQuery::builder();
        b.atom_vars("r", &["X"]);
        b.head("ans", &["Z"]);
        b.build();
    }

    #[test]
    fn constants_and_repeated_vars() {
        let mut b = ConjunctiveQuery::builder();
        let x = b.var("X");
        b.atom("r", vec![Term::Var(x), Term::Var(x), Term::Const(7)]);
        let q = b.build();
        assert_eq!(q.atom(0).variables(), vec![x]);
        assert_eq!(q.atom_vars(0).len(), 1);
        assert_eq!(q.to_string(), "ans :- r(X,X,7).");
        // The hypergraph edge has a single vertex.
        let h = q.hypergraph();
        assert_eq!(h.edge_vertices(hypergraph::EdgeId(0)).len(), 1);
    }

    #[test]
    fn duplicate_predicates_get_distinct_edge_names() {
        let mut b = ConjunctiveQuery::builder();
        b.atom_vars("t", &["X", "Y"]);
        b.atom_vars("t", &["Y", "Z"]);
        b.atom_vars("u", &["Z"]);
        let q = b.build();
        let h = q.hypergraph();
        assert_eq!(h.edge_name(hypergraph::EdgeId(0)), "t#0");
        assert_eq!(h.edge_name(hypergraph::EdgeId(1)), "t#1");
        assert_eq!(h.edge_name(hypergraph::EdgeId(2)), "u");
    }

    #[test]
    fn nullary_atom() {
        let mut b = ConjunctiveQuery::builder();
        b.atom("flag", vec![]);
        b.atom_vars("r", &["X"]);
        let q = b.build();
        assert_eq!(q.atom(0).arity(), 0);
        assert_eq!(q.to_string(), "ans :- flag, r(X).");
        assert!(q
            .hypergraph()
            .edge_vertices(hypergraph::EdgeId(0))
            .is_empty());
    }
}
