//! Conjunctive-query front end for the hypertree-decomposition workspace.
//!
//! Queries are rule-based conjunctive queries in the sense of Section 2.1 of
//! *Gottlob, Leone, Scarcello: Hypertree Decompositions and Tractable
//! Queries*: `ans(u) ← r1(u1) ∧ … ∧ rn(un)`. The crate provides
//!
//! * the [`ConjunctiveQuery`] AST with interned variables,
//! * a datalog-style parser ([`parse_query`]),
//! * the query hypergraph `H(Q)` ([`ConjunctiveQuery::hypergraph`]) and the
//!   canonical query `cq(H)` of a hypergraph ([`canonical_query`],
//!   Appendix A), which are mutually inverse up to naming.
//!
//! # Example
//!
//! ```
//! use cq::parse_query;
//!
//! let q = parse_query("ans :- enrolled(S,C,R), teaches(P,C,A), parent(P,S).").unwrap();
//! assert!(q.is_boolean());
//! assert!(!hypergraph::acyclic::is_acyclic(&q.hypergraph())); // Q1 is cyclic
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::print_stdout)]

mod canonical;
mod parser;
mod query;

pub use canonical::canonical_query;
pub use parser::{parse_query, ParseError, ParseErrorKind};
pub use query::{Atom, ConjunctiveQuery, QueryBuilder, Term};
