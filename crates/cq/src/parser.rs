//! A hand-rolled parser for datalog-style conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query := head ( ":-" | "<-" ) body "."?
//! head  := ident [ "(" terms ")" ]
//! body  := atom { "," atom }
//! atom  := ident [ "(" terms ")" ]
//! terms := term { "," term }
//! term  := VARIABLE | NATURAL
//! ```
//!
//! Identifiers match `[A-Za-z_][A-Za-z0-9_']*`; a term starting with an
//! uppercase letter or `_` is a variable (the trailing `'` supports the
//! paper's primed variables like `X'`), and natural numbers are constants.
//! Lowercase terms are rejected with a hint: symbolic constants must be
//! encoded as numbers so that query constants and database values live in
//! the same domain.

use crate::query::{Atom, ConjunctiveQuery, QueryBuilder, Term};
use std::fmt;

/// What went wrong, beyond the free-text message. Callers that need to
/// react to a specific failure (the serving layer distinguishes malformed
/// requests from structurally invalid ones) match on this instead of
/// scraping [`ParseError::message`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A variable occurs more than once in the head atom. The head lists
    /// *output columns*; repeating one is almost always a typo, and the
    /// evaluation engines assume distinct head variables.
    DuplicateHeadVariable(String),
    /// The body has no atoms (`ans :-` or `ans :- .`). A conjunctive
    /// query needs at least one atom for its hypergraph to mean anything.
    EmptyBody,
    /// Any other syntax error, described by the message alone.
    Other,
}

/// A parse error with line/byte position and message, in the same
/// line-numbered style as the `.hg` hypergraph parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the input where the error was detected.
    pub line: usize,
    /// Byte offset into the input where the error was detected.
    pub position: usize,
    /// The kind of failure, for programmatic handling.
    pub kind: ParseErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: parse error at byte {}: {}",
            self.line, self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a conjunctive query, e.g.
/// `ans(S) :- enrolled(S,C,R), teaches(P,C,A), parent(P,S).`
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    Parser::new(input).query()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

#[derive(Debug, PartialEq)]
enum RawTerm {
    Var(String),
    Const(u64),
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    /// 1-based line number of byte offset `pos`.
    fn line_of(&self, pos: usize) -> usize {
        self.input[..pos.min(self.input.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1
    }

    fn error_with<T>(
        &self,
        kind: ParseErrorKind,
        message: impl Into<String>,
    ) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line_of(self.pos),
            position: self.pos,
            kind,
            message: message.into(),
        })
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        self.error_with(ParseErrorKind::Other, message)
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, c)) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return self.error("expected an identifier"),
        }
        let end = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_' || c == '\''))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let name = rest[..end].to_string();
        self.pos += end;
        Ok(name)
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| !c.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return self.error("expected a number");
        }
        let value: u64 = rest[..end].parse().map_err(|_| ParseError {
            line: self.line_of(self.pos),
            position: self.pos,
            kind: ParseErrorKind::Other,
            message: "number too large for u64".to_string(),
        })?;
        self.pos += end;
        Ok(value)
    }

    fn term(&mut self) -> Result<RawTerm, ParseError> {
        self.skip_ws();
        match self.rest().chars().next() {
            Some(c) if c.is_ascii_digit() => Ok(RawTerm::Const(self.number()?)),
            Some(c) if c.is_ascii_uppercase() || c == '_' => Ok(RawTerm::Var(self.ident()?)),
            Some(c) if c.is_ascii_lowercase() => self
                .error("lowercase terms are not supported: encode symbolic constants as numbers"),
            _ => self.error("expected a term (variable or number)"),
        }
    }

    fn atom(&mut self) -> Result<(String, Vec<RawTerm>), ParseError> {
        let predicate = self.ident()?;
        let mut terms = Vec::new();
        if self.eat("(") && !self.eat(")") {
            loop {
                terms.push(self.term()?);
                if self.eat(")") {
                    break;
                }
                if !self.eat(",") {
                    return self.error("expected ',' or ')' in argument list");
                }
            }
        }
        Ok((predicate, terms))
    }

    fn query(&mut self) -> Result<ConjunctiveQuery, ParseError> {
        let (head_name, head_terms) = self.atom()?;
        // Head variables are output columns; a repeat is a dedicated error
        // rather than a silent dedup.
        let mut seen_head_vars: Vec<&str> = Vec::new();
        for t in &head_terms {
            if let RawTerm::Var(name) = t {
                if seen_head_vars.contains(&name.as_str()) {
                    return self.error_with(
                        ParseErrorKind::DuplicateHeadVariable(name.clone()),
                        format!("variable {name} occurs twice in the head atom"),
                    );
                }
                seen_head_vars.push(name);
            }
        }
        if !self.eat(":-") && !self.eat("<-") {
            return self.error("expected ':-' or '<-' after the head");
        }
        self.skip_ws();
        if self.rest().is_empty() || self.rest().starts_with('.') {
            return self.error_with(
                ParseErrorKind::EmptyBody,
                "the query body has no atoms (a conjunctive query needs at least one)",
            );
        }
        let mut body = Vec::new();
        loop {
            body.push(self.atom()?);
            if !self.eat(",") {
                break;
            }
        }
        self.eat(".");
        self.skip_ws();
        if !self.rest().is_empty() {
            return self.error("trailing input after the query");
        }

        // Intern head variables first so their ids follow head order, then
        // the body. The head may only use variables that appear in the body
        // (checked by QueryBuilder::build).
        let mut b = QueryBuilder::default();
        let to_terms = |b: &mut QueryBuilder, raw: Vec<RawTerm>| -> Vec<Term> {
            raw.into_iter()
                .map(|t| match t {
                    RawTerm::Var(name) => Term::Var(b.var(&name)),
                    RawTerm::Const(c) => Term::Const(c),
                })
                .collect()
        };
        let head = to_terms(&mut b, head_terms);
        let body_atoms: Vec<Atom> = body
            .into_iter()
            .map(|(predicate, raw)| Atom {
                terms: to_terms(&mut b, raw),
                predicate,
            })
            .collect();
        for atom in body_atoms {
            b.atom(atom.predicate, atom.terms);
        }
        b.head_raw(head_name, head);
        let q = b.try_build().map_err(|message| ParseError {
            line: self.line_of(self.pos),
            position: self.pos,
            kind: ParseErrorKind::Other,
            message,
        })?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse_query("ans :- enrolled(S,C,R), teaches(P,C,A), parent(P,S).").unwrap();
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.num_vars(), 5);
        assert!(q.is_boolean());
    }

    #[test]
    fn parses_arrow_syntax_and_no_dot() {
        let q = parse_query("ans(X) <- r(X, Y), s(Y)").unwrap();
        assert_eq!(q.head_vars().len(), 1);
        assert_eq!(q.to_string(), "ans(X) :- r(X,Y), s(Y).");
    }

    #[test]
    fn roundtrips_display() {
        let text = "ans(S,C) :- enrolled(S,C,R), teaches(P,C,A), parent(P,S).";
        let q = parse_query(text).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parses_constants_and_primes() {
        let q = parse_query("ans :- r(X', 42, X'), s(_U).").unwrap();
        assert_eq!(q.num_vars(), 2);
        assert!(q.var_by_name("X'").is_some());
        assert!(q.var_by_name("_U").is_some());
        assert_eq!(q.atom(0).terms[1], Term::Const(42));
    }

    #[test]
    fn parses_nullary_atoms() {
        let q = parse_query("ans :- flag, r(X).").unwrap();
        assert_eq!(q.atom(0).arity(), 0);
        let q2 = parse_query("ans :- flag(), r(X).").unwrap();
        assert_eq!(q2.atom(0).arity(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("").is_err());
        assert!(parse_query("ans").is_err());
        assert!(parse_query("ans :- r(X").is_err());
        assert!(parse_query("ans :- r(X,)").is_err());
        assert!(parse_query("ans :- r(X). trailing").is_err());
        assert!(parse_query("ans : - r(X)").is_err());
        assert!(parse_query("1ans :- r(X)").is_err());
    }

    #[test]
    fn rejects_lowercase_terms_with_hint() {
        let err = parse_query("ans :- r(x).").unwrap_err();
        assert!(err.message.contains("symbolic constants"));
        assert!(err.to_string().contains("parse error at byte"));
        assert_eq!(err.kind, ParseErrorKind::Other);
    }

    #[test]
    fn rejects_duplicate_head_variables_with_dedicated_error() {
        let err = parse_query("ans(X, Y, X) :- r(X, Y).").unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::DuplicateHeadVariable("X".to_string())
        );
        assert!(err.message.contains("occurs twice in the head"));
        assert_eq!(err.line, 1);
        // Constants and distinct variables in the head stay fine.
        assert!(parse_query("ans(X, Y) :- r(X, Y).").is_ok());
    }

    #[test]
    fn rejects_empty_bodies_with_dedicated_error() {
        for text in ["ans :-", "ans :- .", "ans(X) <- ."] {
            let err = parse_query(text).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::EmptyBody, "{text}");
            assert!(err.message.contains("no atoms"), "{text}");
        }
    }

    #[test]
    fn errors_carry_line_numbers_like_the_hg_parser() {
        let err = parse_query("ans :- r(X),\n       s(x).").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2: "), "{err}");
        let err = parse_query("ans :- r(x).").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unsafe_heads() {
        let err = parse_query("ans(Z) :- r(X).").unwrap_err();
        assert!(err.message.contains("head variable"));
    }

    #[test]
    fn head_variable_ids_come_first() {
        let q = parse_query("ans(B, A) :- r(A, B, C).").unwrap();
        assert_eq!(q.var_name(hypergraph::VertexId(0)), "B");
        assert_eq!(q.var_name(hypergraph::VertexId(1)), "A");
    }
}
