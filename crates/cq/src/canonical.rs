//! Canonical queries of hypergraphs (Definition A.2 of the paper).
//!
//! The canonical query `cq(H)` of a hypergraph `H` has one atom per edge,
//! whose arguments are the edge's vertices in lexicographic (here: id)
//! order. Theorem A.3 states that the hypertree decompositions of `H` and
//! of `cq(H)` coincide; because [`crate::ConjunctiveQuery::hypergraph`]
//! preserves vertex and edge indices, `cq` and `hypergraph` are mutually
//! inverse up to naming, which the tests below pin down.

use crate::query::{ConjunctiveQuery, QueryBuilder, Term};
use hypergraph::Hypergraph;

/// The canonical (Boolean) conjunctive query of a hypergraph.
pub fn canonical_query(h: &Hypergraph) -> ConjunctiveQuery {
    let mut b = QueryBuilder::default();
    // Intern the variables first so ids line up with the hypergraph.
    let vars: Vec<_> = h.vertices().map(|v| b.var(h.vertex_name(v))).collect();
    for e in h.edges() {
        let terms: Vec<Term> = h
            .edge_vertices(e)
            .iter()
            .map(|v| Term::Var(vars[hypergraph::Ix::index(v)]))
            .collect();
        b.atom(h.edge_name(e).to_string(), terms);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{EdgeId, Ix};

    #[test]
    fn roundtrip_preserves_structure() {
        let h = Hypergraph::from_edge_lists(5, &[&[0, 1, 2], &[2, 3], &[4]]);
        let q = canonical_query(&h);
        assert!(q.is_boolean());
        assert_eq!(q.atoms().len(), h.num_edges());
        let h2 = q.hypergraph();
        assert_eq!(h2.num_vertices(), h.num_vertices());
        assert_eq!(h2.num_edges(), h.num_edges());
        for e in h.edges() {
            assert_eq!(h2.edge_vertices(e), h.edge_vertices(e));
        }
    }

    #[test]
    fn vertex_ids_are_stable() {
        let mut b = Hypergraph::builder();
        b.edge_by_names("r", &["B", "A"]);
        b.edge_by_names("s", &["A", "C"]);
        let h = b.build();
        let q = canonical_query(&h);
        for v in h.vertices() {
            assert_eq!(q.var_name(v), h.vertex_name(v));
        }
    }

    #[test]
    fn duplicate_vertex_names_are_tolerated() {
        // Hypergraphs may carry duplicate names (e.g. after mechanical
        // generation); the canonical query interns by name, so duplicates
        // collapse onto one variable. This is intentional and documented
        // behaviour: generators in this workspace produce unique names.
        let mut b = Hypergraph::builder();
        b.add_vertex("X");
        b.add_vertex("X");
        b.add_edge("r", &[hypergraph::VertexId(0), hypergraph::VertexId(1)]);
        let h = b.build();
        let q = canonical_query(&h);
        assert_eq!(q.num_vars(), 1);
        assert_eq!(q.atom_vars(0).len(), 1);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_edge_lists(0, &[]);
        let q = canonical_query(&h);
        assert_eq!(q.atoms().len(), 0);
        assert_eq!(q.num_vars(), 0);
    }

    #[test]
    fn nullary_edge_becomes_nullary_atom() {
        let h = Hypergraph::from_edge_lists(1, &[&[], &[0]]);
        let q = canonical_query(&h);
        assert_eq!(q.atom(0).arity(), 0);
        assert_eq!(q.atom(1).arity(), 1);
        assert_eq!(q.hypergraph().edge_vertices(EdgeId(0)).len(), 0);
        let _ = EdgeId::new(0).index();
    }
}
